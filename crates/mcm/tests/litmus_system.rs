//! Full-system litmus campaigns — Table IV in miniature.
//!
//! Each campaign runs a litmus test many times on the complete timing
//! simulator (timing cores + L1s + C³ bridges + DCOH over the jittered
//! CXL fabric) and checks every observed outcome against the operational
//! compound-MCM reference. The bench binary `table4` runs the full
//! matrix with more iterations; these tests keep CI fast.

use c3::system::GlobalProtocol;
use c3_mcm::harness::{bounded_check, reference_allowed, run_litmus, LitmusConfig};
use c3_mcm::litmus::LitmusTest;
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_sim::fault::LinkFaults;

const MESI_CXL_MESI: (ProtocolFamily, ProtocolFamily) =
    (ProtocolFamily::Mesi, ProtocolFamily::Mesi);
const MESI_CXL_MOESI: (ProtocolFamily, ProtocolFamily) =
    (ProtocolFamily::Mesi, ProtocolFamily::Moesi);

fn check(test: &LitmusTest, cfg: &LitmusConfig) {
    let report = run_litmus(test, cfg);
    assert!(
        report.passed(),
        "{} under {:?}/{:?}: forbidden outcomes {:?} (allowed {:?})",
        test.name,
        cfg.protocols,
        cfg.mcms,
        report.forbidden,
        report.allowed,
    );
}

#[test]
fn mp_passes_all_mcm_combinations() {
    for mcms in [
        (Mcm::Weak, Mcm::Weak),
        (Mcm::Tso, Mcm::Weak),
        (Mcm::Tso, Mcm::Tso),
    ] {
        let cfg = LitmusConfig::new(MESI_CXL_MESI, GlobalProtocol::Cxl, mcms).runs(80);
        check(&LitmusTest::mp(), &cfg);
    }
}

#[test]
fn sb_and_lb_pass_on_cxl() {
    for mcms in [(Mcm::Weak, Mcm::Weak), (Mcm::Tso, Mcm::Tso)] {
        let cfg = LitmusConfig::new(MESI_CXL_MESI, GlobalProtocol::Cxl, mcms).runs(80);
        check(&LitmusTest::sb(), &cfg);
        check(&LitmusTest::lb(), &cfg);
    }
}

#[test]
fn iriw_passes_heterogeneous_protocols() {
    let cfg =
        LitmusConfig::new(MESI_CXL_MOESI, GlobalProtocol::Cxl, (Mcm::Tso, Mcm::Weak)).runs(60);
    check(&LitmusTest::iriw(), &cfg);
}

#[test]
fn two_plus_two_w_and_r_and_s_pass() {
    let cfg =
        LitmusConfig::new(MESI_CXL_MOESI, GlobalProtocol::Cxl, (Mcm::Weak, Mcm::Weak)).runs(80);
    check(&LitmusTest::two_plus_two_w(), &cfg);
    check(&LitmusTest::r(), &cfg);
    check(&LitmusTest::s(), &cfg);
}

#[test]
fn hierarchical_baseline_also_passes() {
    let cfg = LitmusConfig::new(
        MESI_CXL_MESI,
        GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
        (Mcm::Weak, Mcm::Weak),
    )
    .runs(60);
    check(&LitmusTest::mp(), &cfg);
    check(&LitmusTest::sb(), &cfg);
}

#[test]
fn control_unsynced_mp_shows_relaxed_outcome_on_weak() {
    // The paper's control experiment: with synchronization removed, the
    // tests must stop passing unconditionally (§VI-A).
    let cfg =
        LitmusConfig::new(MESI_CXL_MESI, GlobalProtocol::Cxl, (Mcm::Weak, Mcm::Weak)).runs(400);
    let synced_allowed = reference_allowed(&LitmusTest::mp(), &cfg);
    let report = run_litmus(&LitmusTest::mp().without_sync(), &cfg);
    assert!(
        report.relaxed_observed(&synced_allowed),
        "stripping sync never exposed a relaxed MP outcome: observed {:?}",
        report.observed
    );
    // And the unsynced run must still be within the weak model's own
    // allowed set — relaxed, but never incoherent.
    assert!(
        report.passed(),
        "incoherent outcome: {:?}",
        report.forbidden
    );
}

#[test]
fn control_unsynced_sb_shows_store_buffering_on_tso() {
    let cfg = LitmusConfig::new(MESI_CXL_MESI, GlobalProtocol::Cxl, (Mcm::Tso, Mcm::Tso)).runs(200);
    let synced_allowed = reference_allowed(&LitmusTest::sb(), &cfg);
    let report = run_litmus(&LitmusTest::sb().without_sync(), &cfg);
    assert!(
        report.relaxed_observed(&synced_allowed),
        "TSO store buffering never observed: {:?}",
        report.observed
    );
    assert!(report.passed());
}

#[test]
fn tso_store_store_order_holds_without_fences() {
    // Selective fence removal (§VI-A): a TSO writer keeps MP safe with no
    // synchronization at all, because TSO preserves store-store order —
    // provided the reader is also ordered (TSO preserves load-load).
    let cfg = LitmusConfig::new(MESI_CXL_MESI, GlobalProtocol::Cxl, (Mcm::Tso, Mcm::Tso)).runs(150);
    let report = run_litmus(&LitmusTest::mp().without_sync(), &cfg);
    assert!(
        !report.observed.contains(&vec![1, 0]),
        "TSO MP exhibited (1,0): {:?}",
        report.observed
    );
}

#[test]
fn corr_coherence_holds_unsynced_everywhere() {
    for protocols in [MESI_CXL_MESI, MESI_CXL_MOESI] {
        let cfg =
            LitmusConfig::new(protocols, GlobalProtocol::Cxl, (Mcm::Weak, Mcm::Weak)).runs(80);
        check(&LitmusTest::corr(), &cfg);
    }
}

#[test]
fn rcc_cluster_litmus_mp() {
    // A GPU-like RCC cluster as thread-0 host: release/acquire map to
    // write-through flushes and self-invalidations, and the compound
    // model must still hold.
    let cfg = LitmusConfig::new(
        (ProtocolFamily::Rcc, ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
        (Mcm::Weak, Mcm::Tso),
    )
    .runs(80);
    check(&LitmusTest::mp(), &cfg);
    check(&LitmusTest::s(), &cfg);
}

#[test]
fn extended_suite_passes_spot_checks() {
    let cfg =
        LitmusConfig::new(MESI_CXL_MOESI, GlobalProtocol::Cxl, (Mcm::Weak, Mcm::Weak)).runs(60);
    check(&LitmusTest::wrc(), &cfg);
    check(&LitmusTest::corr2(), &cfg);
    check(&LitmusTest::wwc(), &cfg);
    check(&LitmusTest::wrw_2w(), &cfg);
}

#[test]
fn full_battery_bounded_check_proves_every_forbidden_tuple() {
    // Bounded model-checking mode: for every test in the 22-test battery
    // and every MCM pairing, the reference enumeration must exclude each
    // declared-forbidden outcome — a proof under the compound model, not
    // a sampling claim.
    for mcms in [
        (Mcm::Weak, Mcm::Weak),
        (Mcm::Tso, Mcm::Tso),
        (Mcm::Tso, Mcm::Weak),
        (Mcm::Weak, Mcm::Tso),
    ] {
        let cfg = LitmusConfig::new(MESI_CXL_MESI, GlobalProtocol::Cxl, mcms);
        for test in LitmusTest::full_battery() {
            let leaked = bounded_check(&test, &cfg);
            assert!(
                leaked.is_empty(),
                "{} under {mcms:?}: forbidden tuples allowed by the model: {leaked:?}",
                test.name
            );
        }
    }
}

#[test]
fn full_battery_execution_passes() {
    // Execution mode: every battery test runs on the full timing
    // simulator; no observed outcome may leave the reference allowed set
    // (which in particular excludes every declared-forbidden tuple — see
    // the bounded-check test).
    let cfg =
        LitmusConfig::new(MESI_CXL_MOESI, GlobalProtocol::Cxl, (Mcm::Tso, Mcm::Weak)).runs(20);
    for test in LitmusTest::full_battery() {
        let report = run_litmus(&test, &cfg);
        assert!(
            report.passed(),
            "{}: forbidden outcomes {:?} (allowed {:?})",
            test.name,
            report.forbidden,
            report.allowed,
        );
        for f in &test.forbidden {
            assert!(
                !report.observed.contains(f),
                "{}: declared-forbidden tuple {f:?} observed",
                test.name
            );
        }
    }
}

#[test]
fn litmus_under_faults_still_passes() {
    // Litmus-under-faults: lossy, duplicating CXL links with
    // timeout/retry resilience enabled must perturb timing only — the
    // observed outcomes stay inside the *fault-free* allowed set.
    let faults = LinkFaults {
        drop_p: 0.05,
        dup_p: 0.03,
        ..LinkFaults::default()
    };
    let cfg = LitmusConfig::new(MESI_CXL_MESI, GlobalProtocol::Cxl, (Mcm::Weak, Mcm::Weak))
        .runs(40)
        .with_faults(faults);
    for test in [
        LitmusTest::mp(),
        LitmusTest::sb(),
        LitmusTest::wrc(),
        LitmusTest::corr(),
    ] {
        let report = run_litmus(&test, &cfg);
        assert!(
            report.passed(),
            "{} under faults: forbidden outcomes {:?}",
            test.name,
            report.forbidden,
        );
    }
}
