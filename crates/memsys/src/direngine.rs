//! The host-domain directory engine.
//!
//! This is the reusable "local directory controller" half of the paper's
//! design (Fig. 5): it tracks which private caches hold each line, drives
//! the native MESI/MESIF/MOESI/RCC directory flows, and — crucially —
//! exposes the two hooks C³ needs:
//!
//! * **Rule I (flow delegation):** when a request cannot be satisfied at
//!   the cluster level (no global read/write permission), the engine emits
//!   [`DirEffect::BackendRead`]/[`DirEffect::BackendWrite`] and suspends the
//!   transaction; the owner component resumes it with
//!   [`DirEngine::backend_read_done`]/[`DirEngine::backend_write_done`]
//!   once the global domain completes.
//! * **Rule II (atomicity / nesting):** while a transaction is in flight on
//!   a line, later requests to that line are queued; a global-initiated
//!   [`DirEngine::recall`] (the conceptual cross-domain *store*/*load* of
//!   Fig. 6b) runs with priority and may overlap a transaction that is
//!   itself suspended on the backend — exactly the conflict scenario of
//!   Fig. 2 — without producing origin-domain effects out of order.
//!
//! The same engine, with a backend that always grants permission, is the
//! baseline global MESI directory ([`crate::global_dir::GlobalMesiDir`]).

use std::collections::{BTreeSet, VecDeque};

use c3_protocol::msg::{Grant, HostMsg};
use c3_protocol::ops::Addr;
use c3_protocol::ssp::DirPolicy;
use c3_sim::component::ComponentId;
use c3_sim::region::{Footprint, RegionEntry, RegionMap};

/// Which private caches hold a line, from the directory's point of view.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Holders {
    /// No private cache holds the line.
    #[default]
    None,
    /// Read-only sharers; the directory's data copy is current.
    Shared(BTreeSet<ComponentId>),
    /// A single exclusive owner (E or M); its copy may be dirty.
    Exclusive(ComponentId),
    /// MOESI: a dirty owner plus read-only sharers.
    Owned(ComponentId, BTreeSet<ComponentId>),
}

impl Holders {
    /// Whether any private cache holds a copy.
    pub fn any(&self) -> bool {
        !matches!(self, Holders::None)
    }

    /// Whether some private cache may hold a dirty copy.
    pub fn maybe_dirty(&self) -> bool {
        matches!(self, Holders::Exclusive(_) | Holders::Owned(_, _))
    }

    /// Number of caches holding a copy.
    pub fn count(&self) -> usize {
        match self {
            Holders::None => 0,
            Holders::Shared(s) => s.len(),
            Holders::Exclusive(_) => 1,
            Holders::Owned(_, s) => 1 + s.len(),
        }
    }
}

/// Global-domain permissions the caller holds for a line at call time.
///
/// For the C³ bridge these derive from the CXL cache state; for the
/// top-level baseline directory they are always granted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BackendPerms {
    /// The cluster may grant read (S) copies locally.
    pub read_ok: bool,
    /// The cluster may grant write (E/M) permission locally.
    pub write_ok: bool,
}

impl BackendPerms {
    /// Full permission — used by the top-level directory.
    pub const ALL: BackendPerms = BackendPerms {
        read_ok: true,
        write_ok: true,
    };
}

/// The kind of global-initiated recall (C³'s conceptual cross-domain
/// access, Table II's "X-Access").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecallKind {
    /// Conceptual *store*: invalidate every local copy, collecting dirty
    /// data (serves `BISnpInv` and CXL-cache evictions, Fig. 7).
    Exclusive,
    /// Conceptual *load*: fetch current data and make the line
    /// non-exclusive locally (serves `BISnpData`).
    Shared,
}

/// An effect the engine asks its owning component to carry out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirEffect {
    /// Send a host-domain message.
    Send {
        /// Destination cache (or self, for recalls).
        dst: ComponentId,
        /// The message.
        msg: HostMsg,
    },
    /// Rule I: the pending transaction needs global read permission.
    BackendRead {
        /// Line concerned.
        addr: Addr,
    },
    /// Rule I: the pending transaction needs global write permission.
    BackendWrite {
        /// Line concerned.
        addr: Addr,
    },
    /// The cluster-level data copy changed (dirty data arrived from a
    /// private cache); the owner must treat its global copy as modified.
    DataUpdated {
        /// Line concerned.
        addr: Addr,
        /// New contents.
        data: u64,
        /// The new contents carry a poison mark (known-corrupt payload
        /// from a recovery abandonment); a clean update heals the mark.
        poisoned: bool,
    },
    /// A recall completed: all local copies satisfy the requested
    /// condition and `data` is the current line value.
    RecallDone {
        /// Line concerned.
        addr: Addr,
        /// Recall kind that completed.
        kind: RecallKind,
        /// Current line contents.
        data: u64,
        /// Whether dirty data was collected from a private cache.
        was_dirty: bool,
    },
    /// A host transaction fully completed (Unblock received).
    TxnDone {
        /// Line concerned.
        addr: Addr,
    },
}

#[derive(Clone, Debug)]
enum HostPhase {
    /// Suspended: waiting for the backend to grant read permission.
    ReadBackend,
    /// Suspended: waiting for the backend to grant write permission.
    WriteBackend,
    /// RCC write-through waiting for global write permission.
    WtBackend { data: u64 },
    /// Remote atomic waiting for global write permission.
    AtomicBackend { add: u64 },
    /// Flows launched; waiting for the requester's Unblock.
    WaitUnblock,
}

#[derive(Clone, Debug)]
struct HostBusy {
    requester: ComponentId,
    phase: HostPhase,
}

#[derive(Clone, Debug)]
struct RecallBusy {
    kind: RecallKind,
    pending_acks: u32,
    need_data: bool,
    got_data: bool,
    dirty: bool,
}

#[derive(Clone, Debug, Default)]
struct Line {
    holders: Holders,
    fholder: Option<ComponentId>,
    data: u64,
    /// The directory's data copy is known-corrupt (poisoned writeback).
    poisoned: bool,
    host: Option<HostBusy>,
    recall: Option<RecallBusy>,
    pending_recall: VecDeque<RecallKind>,
    queue: VecDeque<(ComponentId, HostMsg)>,
}

impl Line {
    fn blocks_requests(&self) -> bool {
        self.host.is_some() || self.recall.is_some()
    }
}

/// The quiescent form of a directory line: once no transaction, recall,
/// queue entry, holder or forwarder remains, all the directory still
/// knows about a line is its data copy and the sticky poison mark.
#[derive(Clone, Copy, PartialEq, Default, Debug)]
struct LineSummary {
    data: u64,
    poisoned: bool,
}

impl RegionEntry for Line {
    type Summary = LineSummary;

    fn try_demote(&self) -> Option<LineSummary> {
        let quiescent = !self.blocks_requests()
            && self.queue.is_empty()
            && self.pending_recall.is_empty()
            && matches!(self.holders, Holders::None)
            && self.fholder.is_none();
        quiescent.then_some(LineSummary {
            data: self.data,
            poisoned: self.poisoned,
        })
    }

    fn restore(&mut self, s: LineSummary) {
        self.holders = Holders::None;
        self.fholder = None;
        self.data = s.data;
        self.poisoned = s.poisoned;
        self.host = None;
        self.recall = None;
        self.pending_recall.clear();
        self.queue.clear();
    }
}

/// A line with in-flight directory work, captured for a deadlock
/// post-mortem (see [`DirEngine::busy_lines`]).
#[derive(Clone, Debug)]
pub struct BusyLine {
    /// The line.
    pub addr: Addr,
    /// Human-readable summary of the in-flight transaction / recall.
    pub desc: String,
    /// The component the transaction waits on, when the engine knows it
    /// (a requester owing an Unblock). Backend suspensions report `None`
    /// here — the owning component knows its backend and fills that in.
    pub waiting_on: Option<ComponentId>,
    /// Whether the transaction is suspended on the backend (Rule I).
    pub on_backend: bool,
    /// Requests queued behind the busy line.
    pub queued: usize,
}

/// The directory engine. See the module docs for the role it plays.
#[derive(Debug)]
pub struct DirEngine {
    policy: DirPolicy,
    self_id: ComponentId,
    lines: RegionMap<Line>,
    /// Statistics: transactions that had to consult the backend.
    pub backend_reads: u64,
    /// Statistics: write-permission backend consultations.
    pub backend_writes: u64,
    /// Statistics: completed recalls.
    pub recalls: u64,
    /// Statistics: requests that found the line busy and queued.
    pub stalled_requests: u64,
}

impl DirEngine {
    /// Create an engine applying `policy`, owned by component `self_id`
    /// (recalled data is addressed to `self_id`).
    pub fn new(policy: DirPolicy, self_id: ComponentId) -> Self {
        DirEngine {
            policy,
            self_id,
            lines: RegionMap::new(),
            backend_reads: 0,
            backend_writes: 0,
            recalls: 0,
            stalled_requests: 0,
        }
    }

    /// Current holders of a line. Demoted (quiescent) lines have no
    /// holders by the region-store invariant.
    pub fn holders(&self, addr: Addr) -> Holders {
        self.lines
            .get(addr.0)
            .map(|l| l.holders.clone())
            .unwrap_or_default()
    }

    /// Current cluster-level data copy.
    pub fn data(&self, addr: Addr) -> u64 {
        if let Some(l) = self.lines.get(addr.0) {
            l.data
        } else {
            self.lines.summary(addr.0).map(|s| s.data).unwrap_or(0)
        }
    }

    /// Seed the cluster-level data copy (initial memory contents).
    /// Seeded lines go straight to the demoted summary form: seeding a
    /// large footprint must not materialize per-line records.
    pub fn seed_data(&mut self, addr: Addr, data: u64) {
        self.lines.entry(addr.0).data = data;
        self.lines.demote(addr.0);
    }

    /// Whether a line has an in-flight transaction or recall.
    pub fn is_busy(&self, addr: Addr) -> bool {
        self.lines
            .get(addr.0)
            .map(|l| l.blocks_requests())
            .unwrap_or(false)
    }

    /// Whether every line is quiescent (for deadlock detection).
    /// Demoted lines are quiescent by construction, so only resident
    /// records need checking.
    pub fn idle(&self) -> bool {
        self.lines
            .iter_live()
            .all(|(_, l)| !l.blocks_requests() && l.queue.is_empty() && l.pending_recall.is_empty())
    }

    /// Telemetry occupancy snapshot: one allocation-free pass over the
    /// directory (unlike [`DirEngine::busy_lines`], which builds a
    /// post-mortem `Vec`). Returns `(lines, busy, queued)`: entries
    /// tracked, entries with an in-flight transaction or recall, and
    /// requests parked behind busy lines.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        let mut busy = 0;
        let mut queued = 0;
        for (_, l) in self.lines.iter_live() {
            if l.blocks_requests() {
                busy += 1;
            }
            queued += l.queue.len();
        }
        (self.lines.touched_lines() as usize, busy, queued)
    }

    /// Region-store footprint snapshot: touched/resident line counts and
    /// the (estimated) coherence-state bytes, with peaks.
    pub fn footprint(&self) -> Footprint {
        self.lines.footprint()
    }

    /// Every line with in-flight or queued work, in address order —
    /// the engine's contribution to a deadlock post-mortem.
    pub fn busy_lines(&self) -> Vec<BusyLine> {
        let mut busy: Vec<BusyLine> = self
            .lines
            .iter_live()
            .filter(|(_, l)| {
                l.blocks_requests() || !l.queue.is_empty() || !l.pending_recall.is_empty()
            })
            .map(|(key, l)| {
                let mut parts = Vec::new();
                let mut waiting_on = None;
                let mut on_backend = false;
                if let Some(h) = &l.host {
                    match h.phase {
                        HostPhase::WaitUnblock => {
                            waiting_on = Some(h.requester);
                            parts.push(format!("txn from {} awaiting Unblock", h.requester));
                        }
                        ref phase => {
                            on_backend = true;
                            parts.push(format!(
                                "txn from {} suspended on backend ({phase:?})",
                                h.requester
                            ));
                        }
                    }
                }
                if let Some(r) = &l.recall {
                    parts.push(format!(
                        "recall {:?} awaiting {} ack(s){}",
                        r.kind,
                        r.pending_acks,
                        if r.need_data && !r.got_data {
                            " + data"
                        } else {
                            ""
                        }
                    ));
                }
                if !l.pending_recall.is_empty() {
                    parts.push(format!("{} recall(s) queued", l.pending_recall.len()));
                }
                BusyLine {
                    addr: Addr(key),
                    desc: parts.join("; "),
                    waiting_on,
                    on_backend,
                    queued: l.queue.len(),
                }
            })
            .collect();
        busy.sort_by_key(|b| b.addr);
        busy
    }

    /// Handle a host-domain message from cache `src`.
    ///
    /// `perms` are the caller's *current* global permissions for the line
    /// (consulted only if a new transaction must be admitted).
    pub fn handle_host(
        &mut self,
        src: ComponentId,
        msg: HostMsg,
        perms: BackendPerms,
    ) -> Vec<DirEffect> {
        let addr = msg.addr();
        let mut out = Vec::new();
        match msg {
            // ---- response-class: never blocked ----
            HostMsg::PutS { .. } | HostMsg::PutE { .. } => {
                self.handle_put_clean(src, addr, &mut out);
            }
            HostMsg::PutM { data, poisoned, .. } | HostMsg::PutO { data, poisoned, .. } => {
                self.handle_put_dirty(src, addr, data, poisoned, &mut out);
            }
            HostMsg::InvAck { .. } => {
                self.recall_ack(addr, &mut out);
            }
            HostMsg::Data {
                data,
                dirty,
                poisoned,
                ..
            }
            | HostMsg::DataToDir {
                data,
                dirty,
                poisoned,
                ..
            } => {
                self.recall_data(addr, data, dirty, poisoned, &mut out);
            }
            HostMsg::Unblock { to_state, .. } => {
                let line = self.lines.entry(addr.0);
                match &line.host {
                    Some(HostBusy {
                        requester,
                        phase: HostPhase::WaitUnblock,
                    }) if *requester == src => {
                        debug_assert!(
                            to_state.can_read() || to_state.can_write(),
                            "unblock into a useless state"
                        );
                        line.host = None;
                        out.push(DirEffect::TxnDone { addr });
                        self.drain(addr, perms, &mut out);
                    }
                    other => panic!("unexpected Unblock from {src} (busy: {other:?})"),
                }
            }
            // ---- request-class: subject to per-line blocking ----
            HostMsg::GetS { .. }
            | HostMsg::GetM { .. }
            | HostMsg::WriteThrough { .. }
            | HostMsg::AtomicRmw { .. } => {
                let line = self.lines.entry(addr.0);
                if line.blocks_requests() {
                    self.stalled_requests += 1;
                    line.queue.push_back((src, msg));
                } else {
                    self.admit(src, msg, perms, &mut out);
                    // Instant completions (write-throughs, atomics) leave
                    // the line idle: let queued work proceed.
                    self.drain(addr, perms, &mut out);
                }
            }
            // dir-to-cache-only opcodes arriving here indicate a wiring bug
            other => panic!("directory received cache-bound message {other:?}"),
        }
        self.lines.demote(addr.0);
        out
    }

    /// Resume a transaction suspended on [`DirEffect::BackendRead`]: the
    /// global domain granted at least a shared copy with contents `data`.
    pub fn backend_read_done(
        &mut self,
        addr: Addr,
        data: u64,
        perms: BackendPerms,
    ) -> Vec<DirEffect> {
        debug_assert!(perms.read_ok, "backend_read_done without read permission");
        self.backend_resume(addr, data, perms, false)
    }

    /// Resume a transaction suspended on [`DirEffect::BackendWrite`]: the
    /// global domain granted exclusive ownership with contents `data`.
    pub fn backend_write_done(
        &mut self,
        addr: Addr,
        data: u64,
        perms: BackendPerms,
    ) -> Vec<DirEffect> {
        debug_assert!(
            perms.write_ok,
            "backend_write_done without write permission"
        );
        self.backend_resume(addr, data, perms, true)
    }

    fn backend_resume(
        &mut self,
        addr: Addr,
        data: u64,
        perms: BackendPerms,
        write: bool,
    ) -> Vec<DirEffect> {
        let mut out = Vec::new();
        let line = self.lines.entry(addr.0);
        // Only refresh the data copy if no local cache holds dirty data —
        // a recall that ran while we were suspended may have collected a
        // newer value than the one the backend returned.
        if !line.holders.maybe_dirty() {
            line.data = data;
        }
        let busy = line.host.take().unwrap_or_else(|| {
            panic!("backend completion for {addr} with no suspended transaction")
        });
        let requester = busy.requester;
        match busy.phase {
            HostPhase::ReadBackend => {
                debug_assert!(!write, "read suspension resumed by write completion");
                self.admit(requester, HostMsg::GetS { addr }, perms, &mut out);
            }
            HostPhase::WriteBackend => {
                self.admit(requester, HostMsg::GetM { addr }, perms, &mut out);
            }
            HostPhase::WtBackend { data: wt } => {
                self.admit(
                    requester,
                    HostMsg::WriteThrough { addr, data: wt },
                    perms,
                    &mut out,
                );
            }
            HostPhase::AtomicBackend { add } => {
                self.admit(requester, HostMsg::AtomicRmw { addr, add }, perms, &mut out);
            }
            HostPhase::WaitUnblock => panic!("backend completion while waiting for Unblock"),
        }
        self.drain(addr, perms, &mut out);
        self.lines.demote(addr.0);
        out
    }

    /// Global-initiated recall — C³'s conceptual cross-domain access.
    ///
    /// Runs immediately if the line is idle *or* suspended on the backend
    /// (the Fig. 2 conflict case); otherwise it is queued with priority
    /// over host requests.
    pub fn recall(&mut self, addr: Addr, kind: RecallKind) -> Vec<DirEffect> {
        let mut out = Vec::new();
        let line = self.lines.entry(addr.0);
        debug_assert!(line.recall.is_none(), "one recall per line at a time");
        let must_wait = matches!(
            line.host,
            Some(HostBusy {
                phase: HostPhase::WaitUnblock,
                ..
            })
        );
        if must_wait {
            line.pending_recall.push_back(kind);
        } else {
            self.start_recall(addr, kind, &mut out);
        }
        self.lines.demote(addr.0);
        out
    }

    // ---- internals ----

    fn handle_put_clean(&mut self, src: ComponentId, addr: Addr, out: &mut Vec<DirEffect>) {
        let line = self.lines.entry(addr.0);
        match &mut line.holders {
            Holders::Shared(set) => {
                set.remove(&src);
                if set.is_empty() {
                    line.holders = Holders::None;
                }
            }
            Holders::Exclusive(o) if *o == src => line.holders = Holders::None,
            Holders::Owned(_, set) => {
                set.remove(&src);
            }
            _ => {} // stale eviction notice — line already reassigned
        }
        if line.fholder == Some(src) {
            line.fholder = None;
        }
        out.push(DirEffect::Send {
            dst: src,
            msg: HostMsg::PutAck { addr },
        });
    }

    fn handle_put_dirty(
        &mut self,
        src: ComponentId,
        addr: Addr,
        data: u64,
        poisoned: bool,
        out: &mut Vec<DirEffect>,
    ) {
        let line = self.lines.entry(addr.0);
        let mut updated = false;
        match line.holders.clone() {
            Holders::Exclusive(o) if o == src => {
                line.holders = Holders::None;
                line.data = data;
                updated = true;
            }
            // A PutM can arrive from the owner of an Owned line when the
            // owner's eviction crossed a Fwd-GetS that demoted M to O.
            Holders::Owned(o, set) if o == src => {
                line.holders = if set.is_empty() {
                    Holders::None
                } else {
                    Holders::Shared(set)
                };
                line.data = data;
                updated = true;
            }
            Holders::Shared(mut set) if set.contains(&src) => {
                // The owner was demoted to sharer by a Fwd-GetS that crossed
                // its eviction; its data is still authoritative.
                set.remove(&src);
                line.holders = if set.is_empty() {
                    Holders::None
                } else {
                    Holders::Shared(set)
                };
                line.data = data;
                updated = true;
            }
            _ => {} // stale PutM from a cache that already lost ownership
        }
        if line.fholder == Some(src) {
            line.fholder = None;
        }
        out.push(DirEffect::Send {
            dst: src,
            msg: HostMsg::PutAck { addr },
        });
        if updated {
            line.poisoned = poisoned;
            out.push(DirEffect::DataUpdated {
                addr,
                data,
                poisoned,
            });
        }
    }

    fn recall_ack(&mut self, addr: Addr, out: &mut Vec<DirEffect>) {
        let line = self.lines.entry(addr.0);
        let Some(r) = &mut line.recall else {
            // An InvAck can arrive after the recall completed if a sharer's
            // eviction (PutS) raced the Inv; it is harmless.
            return;
        };
        debug_assert!(r.pending_acks > 0, "unexpected InvAck");
        r.pending_acks -= 1;
        self.try_finish_recall(addr, out);
    }

    fn recall_data(
        &mut self,
        addr: Addr,
        data: u64,
        dirty: bool,
        poisoned: bool,
        out: &mut Vec<DirEffect>,
    ) {
        let line = self.lines.entry(addr.0);
        let Some(r) = &mut line.recall else {
            // Duplicate data (e.g. MESI owners send both Data and DataToDir
            // when the recall requestor is the directory itself).
            if dirty {
                line.data = data;
                line.poisoned = poisoned;
                out.push(DirEffect::DataUpdated {
                    addr,
                    data,
                    poisoned,
                });
            }
            return;
        };
        if r.got_data {
            return; // duplicate of the pair above
        }
        r.got_data = true;
        r.dirty |= dirty;
        line.data = data;
        if dirty {
            line.poisoned = poisoned;
            out.push(DirEffect::DataUpdated {
                addr,
                data,
                poisoned,
            });
        }
        self.try_finish_recall(addr, out);
    }

    fn start_recall(&mut self, addr: Addr, kind: RecallKind, out: &mut Vec<DirEffect>) {
        let self_id = self.self_id;
        let eager = self.policy.eager_invalidation;
        let line = self.lines.entry(addr.0);
        c3_sim::sim_trace!(
            "    engine{}: start_recall {kind:?} {addr} holders={:?} host={:?}",
            self_id.0,
            line.holders,
            line.host
        );
        // RCC clusters are never invalidated eagerly (§IV-D2): local caches
        // self-invalidate at acquire points, so the recall is immediate.
        if !eager {
            out.push(DirEffect::RecallDone {
                addr,
                kind,
                data: line.data,
                was_dirty: false,
            });
            self.recalls += 1;
            self.after_recall(addr, out);
            return;
        }
        let mut busy = RecallBusy {
            kind,
            pending_acks: 0,
            need_data: false,
            got_data: false,
            dirty: false,
        };
        match (kind, line.holders.clone()) {
            (_, Holders::None) => {
                out.push(DirEffect::RecallDone {
                    addr,
                    kind,
                    data: line.data,
                    was_dirty: false,
                });
                self.recalls += 1;
                self.after_recall(addr, out);
                return;
            }
            (RecallKind::Shared, Holders::Shared(_)) => {
                // Local copies are read-only and the data copy is current.
                out.push(DirEffect::RecallDone {
                    addr,
                    kind,
                    data: line.data,
                    was_dirty: false,
                });
                self.recalls += 1;
                self.after_recall(addr, out);
                return;
            }
            (RecallKind::Exclusive, Holders::Shared(set)) => {
                for s in &set {
                    out.push(DirEffect::Send {
                        dst: *s,
                        msg: HostMsg::Inv {
                            addr,
                            requestor: self_id,
                        },
                    });
                }
                busy.pending_acks = set.len() as u32;
                line.holders = Holders::None;
                line.fholder = None;
            }
            (RecallKind::Exclusive, Holders::Exclusive(owner)) => {
                out.push(DirEffect::Send {
                    dst: owner,
                    msg: HostMsg::FwdGetM {
                        addr,
                        requestor: self_id,
                        acks: 0,
                    },
                });
                busy.need_data = true;
                line.holders = Holders::None;
            }
            (RecallKind::Exclusive, Holders::Owned(owner, set)) => {
                out.push(DirEffect::Send {
                    dst: owner,
                    msg: HostMsg::FwdGetM {
                        addr,
                        requestor: self_id,
                        acks: 0,
                    },
                });
                for s in &set {
                    out.push(DirEffect::Send {
                        dst: *s,
                        msg: HostMsg::Inv {
                            addr,
                            requestor: self_id,
                        },
                    });
                }
                busy.need_data = true;
                busy.pending_acks = set.len() as u32;
                line.holders = Holders::None;
            }
            (RecallKind::Shared, Holders::Exclusive(owner)) => {
                out.push(DirEffect::Send {
                    dst: owner,
                    msg: HostMsg::FwdGetS {
                        addr,
                        requestor: self_id,
                        grant: Grant::S,
                    },
                });
                busy.need_data = true;
                line.holders = if self.policy.owner_after_fwd_gets == c3_protocol::StableState::O {
                    Holders::Owned(owner, BTreeSet::new())
                } else {
                    Holders::Shared(BTreeSet::from([owner]))
                };
            }
            (RecallKind::Shared, Holders::Owned(owner, set)) => {
                out.push(DirEffect::Send {
                    dst: owner,
                    msg: HostMsg::FwdGetS {
                        addr,
                        requestor: self_id,
                        grant: Grant::S,
                    },
                });
                busy.need_data = true;
                line.holders = Holders::Owned(owner, set);
            }
        }
        line.recall = Some(busy);
    }

    fn try_finish_recall(&mut self, addr: Addr, out: &mut Vec<DirEffect>) {
        let line = self.lines.entry(addr.0);
        let done = match &line.recall {
            Some(r) => r.pending_acks == 0 && (!r.need_data || r.got_data),
            None => false,
        };
        if done {
            let r = line.recall.take().expect("checked above");
            out.push(DirEffect::RecallDone {
                addr,
                kind: r.kind,
                data: line.data,
                was_dirty: r.dirty,
            });
            self.recalls += 1;
            self.after_recall(addr, out);
        }
    }

    fn after_recall(&mut self, addr: Addr, _out: &mut [DirEffect]) {
        // The host slot may still hold a backend-suspended transaction; it
        // resumes via backend_*_done. Queued requests drain when the line
        // becomes fully idle (on TxnDone), or now if nothing is suspended —
        // but draining requires fresh perms, so the component calls
        // `drain_after_recall` explicitly.
        let _ = addr;
    }

    /// Drain queued work after a recall completed, with fresh permissions.
    /// Call this after acting on [`DirEffect::RecallDone`].
    pub fn drain_after_recall(&mut self, addr: Addr, perms: BackendPerms) -> Vec<DirEffect> {
        let mut out = Vec::new();
        self.drain(addr, perms, &mut out);
        self.lines.demote(addr.0);
        out
    }

    fn drain(&mut self, addr: Addr, perms: BackendPerms, out: &mut Vec<DirEffect>) {
        loop {
            let line = self.lines.entry(addr.0);
            if line.blocks_requests() {
                return;
            }
            if let Some(kind) = line.pending_recall.pop_front() {
                self.start_recall(addr, kind, out);
                continue;
            }
            let Some((src, msg)) = line.queue.pop_front() else {
                return;
            };
            self.admit(src, msg, perms, out);
            // `admit` may complete instantly (write-through) or set busy;
            // loop decides whether more work can start.
        }
    }

    /// Admit a request on an idle line.
    fn admit(
        &mut self,
        src: ComponentId,
        msg: HostMsg,
        perms: BackendPerms,
        out: &mut Vec<DirEffect>,
    ) {
        let addr = msg.addr();
        c3_sim::sim_trace!(
            "    engine{}: admit {msg:?} from {src} holders={:?} perms={perms:?}",
            self.self_id.0,
            self.lines.get(addr.0).map(|l| &l.holders)
        );
        match msg {
            HostMsg::GetS { .. } => self.admit_gets(src, addr, perms, out),
            HostMsg::GetM { .. } => self.admit_getm(src, addr, perms, out),
            HostMsg::WriteThrough { data, .. } => {
                if !perms.write_ok {
                    self.backend_writes += 1;
                    let line = self.lines.entry(addr.0);
                    line.host = Some(HostBusy {
                        requester: src,
                        phase: HostPhase::WtBackend { data },
                    });
                    out.push(DirEffect::BackendWrite { addr });
                    return;
                }
                let line = self.lines.entry(addr.0);
                line.data = data;
                // A write-through is a fresh full-line store: it heals.
                line.poisoned = false;
                out.push(DirEffect::DataUpdated {
                    addr,
                    data,
                    poisoned: false,
                });
                out.push(DirEffect::Send {
                    dst: src,
                    msg: HostMsg::WtAck { addr },
                });
            }
            HostMsg::AtomicRmw { add, .. } => {
                if !perms.write_ok {
                    self.backend_writes += 1;
                    let line = self.lines.entry(addr.0);
                    line.host = Some(HostBusy {
                        requester: src,
                        phase: HostPhase::AtomicBackend { add },
                    });
                    out.push(DirEffect::BackendWrite { addr });
                    return;
                }
                let line = self.lines.entry(addr.0);
                let old = line.data;
                line.data = old.wrapping_add(add);
                let data = line.data;
                // An atomic derives from the old value: junk stays junk.
                out.push(DirEffect::DataUpdated {
                    addr,
                    data,
                    poisoned: line.poisoned,
                });
                out.push(DirEffect::Send {
                    dst: src,
                    msg: HostMsg::AtomicResp { addr, old },
                });
            }
            other => unreachable!("admit() called with non-request {other:?}"),
        }
    }

    fn admit_gets(
        &mut self,
        src: ComponentId,
        addr: Addr,
        perms: BackendPerms,
        out: &mut Vec<DirEffect>,
    ) {
        let policy = self.policy;
        let line = self.lines.entry(addr.0);
        match line.holders.clone() {
            Holders::None => {
                if !perms.read_ok {
                    self.backend_reads += 1;
                    line.host = Some(HostBusy {
                        requester: src,
                        phase: HostPhase::ReadBackend,
                    });
                    out.push(DirEffect::BackendRead { addr });
                    return;
                }
                // Grant E only when the policy wants it AND the cluster
                // holds global exclusivity (Rule I: a local E allows a
                // silent local M, which must be covered globally).
                let grant = if policy.exclusive_grant_when_unshared && perms.write_ok {
                    Grant::E
                } else {
                    Grant::S
                };
                if policy.eager_invalidation {
                    line.holders = match grant {
                        Grant::E => Holders::Exclusive(src),
                        _ => Holders::Shared(BTreeSet::from([src])),
                    };
                } // RCC: directory does not track sharers.
                out.push(DirEffect::Send {
                    dst: src,
                    msg: HostMsg::Data {
                        addr,
                        data: line.data,
                        grant,
                        acks: 0,
                        dirty: false,
                        poisoned: line.poisoned,
                    },
                });
                if policy.eager_invalidation {
                    line.host = Some(HostBusy {
                        requester: src,
                        phase: HostPhase::WaitUnblock,
                    });
                }
            }
            Holders::Shared(mut set) => {
                // Local sharers imply the cluster data copy is valid
                // (inclusion), so the read can be served locally even if
                // the caller currently reports no *backend* permission —
                // that occurs while a retain-shared writeback (`MemWr,S`)
                // is in flight, during which the copy stays readable.
                let grant = policy.gets_grant_with_sharers;
                if let (Grant::F, Some(f)) = (grant, line.fholder) {
                    // The current forwarder supplies data; forwarder duty
                    // moves to the new requester.
                    out.push(DirEffect::Send {
                        dst: f,
                        msg: HostMsg::FwdGetS {
                            addr,
                            requestor: src,
                            grant,
                        },
                    });
                } else {
                    out.push(DirEffect::Send {
                        dst: src,
                        msg: HostMsg::Data {
                            addr,
                            data: line.data,
                            grant,
                            acks: 0,
                            dirty: false,
                            poisoned: line.poisoned,
                        },
                    });
                }
                if grant == Grant::F {
                    line.fholder = Some(src);
                }
                if policy.eager_invalidation {
                    set.insert(src);
                    line.holders = Holders::Shared(set);
                    line.host = Some(HostBusy {
                        requester: src,
                        phase: HostPhase::WaitUnblock,
                    });
                }
            }
            Holders::Exclusive(owner) => {
                debug_assert_ne!(owner, src, "owner re-requesting GetS");
                let grant = policy.gets_grant_with_sharers;
                out.push(DirEffect::Send {
                    dst: owner,
                    msg: HostMsg::FwdGetS {
                        addr,
                        requestor: src,
                        grant,
                    },
                });
                line.holders = if policy.owner_after_fwd_gets == c3_protocol::StableState::O {
                    Holders::Owned(owner, BTreeSet::from([src]))
                } else {
                    Holders::Shared(BTreeSet::from([owner, src]))
                };
                if grant == Grant::F {
                    line.fholder = Some(src);
                }
                line.host = Some(HostBusy {
                    requester: src,
                    phase: HostPhase::WaitUnblock,
                });
            }
            Holders::Owned(owner, mut set) => {
                out.push(DirEffect::Send {
                    dst: owner,
                    msg: HostMsg::FwdGetS {
                        addr,
                        requestor: src,
                        grant: Grant::S,
                    },
                });
                set.insert(src);
                line.holders = Holders::Owned(owner, set);
                line.host = Some(HostBusy {
                    requester: src,
                    phase: HostPhase::WaitUnblock,
                });
            }
        }
    }

    fn admit_getm(
        &mut self,
        src: ComponentId,
        addr: Addr,
        perms: BackendPerms,
        out: &mut Vec<DirEffect>,
    ) {
        let line = self.lines.entry(addr.0);
        match line.holders.clone() {
            Holders::None => {
                if !perms.write_ok {
                    self.backend_writes += 1;
                    line.host = Some(HostBusy {
                        requester: src,
                        phase: HostPhase::WriteBackend,
                    });
                    out.push(DirEffect::BackendWrite { addr });
                    return;
                }
                out.push(DirEffect::Send {
                    dst: src,
                    msg: HostMsg::Data {
                        addr,
                        data: line.data,
                        grant: Grant::M,
                        acks: 0,
                        dirty: false,
                        poisoned: line.poisoned,
                    },
                });
                line.holders = Holders::Exclusive(src);
                line.fholder = None;
                line.host = Some(HostBusy {
                    requester: src,
                    phase: HostPhase::WaitUnblock,
                });
            }
            Holders::Shared(set) => {
                if !perms.write_ok {
                    self.backend_writes += 1;
                    line.host = Some(HostBusy {
                        requester: src,
                        phase: HostPhase::WriteBackend,
                    });
                    out.push(DirEffect::BackendWrite { addr });
                    return;
                }
                let invs: Vec<ComponentId> = set.iter().copied().filter(|s| *s != src).collect();
                for s in &invs {
                    out.push(DirEffect::Send {
                        dst: *s,
                        msg: HostMsg::Inv {
                            addr,
                            requestor: src,
                        },
                    });
                }
                out.push(DirEffect::Send {
                    dst: src,
                    msg: HostMsg::Data {
                        addr,
                        data: line.data,
                        grant: Grant::M,
                        acks: invs.len() as u32,
                        dirty: false,
                        poisoned: line.poisoned,
                    },
                });
                line.holders = Holders::Exclusive(src);
                line.fholder = None;
                line.host = Some(HostBusy {
                    requester: src,
                    phase: HostPhase::WaitUnblock,
                });
            }
            Holders::Exclusive(owner) => {
                debug_assert_ne!(owner, src, "exclusive owner issuing GetM");
                out.push(DirEffect::Send {
                    dst: owner,
                    msg: HostMsg::FwdGetM {
                        addr,
                        requestor: src,
                        acks: 0,
                    },
                });
                line.holders = Holders::Exclusive(src);
                line.host = Some(HostBusy {
                    requester: src,
                    phase: HostPhase::WaitUnblock,
                });
            }
            Holders::Owned(owner, set) => {
                let invs: Vec<ComponentId> = set.iter().copied().filter(|s| *s != src).collect();
                for s in &invs {
                    out.push(DirEffect::Send {
                        dst: *s,
                        msg: HostMsg::Inv {
                            addr,
                            requestor: src,
                        },
                    });
                }
                if owner == src {
                    // Owner upgrading O -> M: it already has the data.
                    out.push(DirEffect::Send {
                        dst: src,
                        msg: HostMsg::Data {
                            addr,
                            data: line.data,
                            grant: Grant::M,
                            acks: invs.len() as u32,
                            dirty: false,
                            poisoned: line.poisoned,
                        },
                    });
                } else {
                    out.push(DirEffect::Send {
                        dst: owner,
                        msg: HostMsg::FwdGetM {
                            addr,
                            requestor: src,
                            acks: invs.len() as u32,
                        },
                    });
                }
                line.holders = Holders::Exclusive(src);
                line.fholder = None;
                line.host = Some(HostBusy {
                    requester: src,
                    phase: HostPhase::WaitUnblock,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3_protocol::ssp::SspSpec;
    use c3_protocol::StableState;

    const DIR: ComponentId = ComponentId(100);
    const A: ComponentId = ComponentId(1);
    const B: ComponentId = ComponentId(2);
    const C: ComponentId = ComponentId(3);
    const X: Addr = Addr(0x10);

    fn mesi_engine() -> DirEngine {
        DirEngine::new(SspSpec::mesi().dir, DIR)
    }
    fn moesi_engine() -> DirEngine {
        DirEngine::new(SspSpec::moesi().dir, DIR)
    }
    fn mesif_engine() -> DirEngine {
        DirEngine::new(SspSpec::mesif().dir, DIR)
    }
    fn rcc_engine() -> DirEngine {
        DirEngine::new(SspSpec::rcc().dir, DIR)
    }

    fn sends(effects: &[DirEffect]) -> Vec<(ComponentId, HostMsg)> {
        effects
            .iter()
            .filter_map(|e| match e {
                DirEffect::Send { dst, msg } => Some((*dst, *msg)),
                _ => None,
            })
            .collect()
    }

    fn unblock(engine: &mut DirEngine, src: ComponentId, addr: Addr, st: StableState) {
        engine.handle_host(
            src,
            HostMsg::Unblock { addr, to_state: st },
            BackendPerms::ALL,
        );
    }

    #[test]
    fn gets_on_idle_grants_exclusive() {
        let mut e = mesi_engine();
        e.seed_data(X, 42);
        let eff = e.handle_host(A, HostMsg::GetS { addr: X }, BackendPerms::ALL);
        let s = sends(&eff);
        assert_eq!(s.len(), 1);
        assert!(matches!(
            s[0],
            (
                A,
                HostMsg::Data {
                    data: 42,
                    grant: Grant::E,
                    acks: 0,
                    ..
                }
            )
        ));
        assert_eq!(e.holders(X), Holders::Exclusive(A));
        unblock(&mut e, A, X, StableState::E);
        assert!(!e.is_busy(X));
    }

    #[test]
    fn gets_without_write_perm_grants_shared() {
        let mut e = mesi_engine();
        let perms = BackendPerms {
            read_ok: true,
            write_ok: false,
        };
        let eff = e.handle_host(A, HostMsg::GetS { addr: X }, perms);
        assert!(matches!(
            sends(&eff)[0].1,
            HostMsg::Data {
                grant: Grant::S,
                ..
            }
        ));
    }

    #[test]
    fn gets_without_read_perm_suspends_on_backend() {
        let mut e = mesi_engine();
        let perms = BackendPerms {
            read_ok: false,
            write_ok: false,
        };
        let eff = e.handle_host(A, HostMsg::GetS { addr: X }, perms);
        assert_eq!(eff, vec![DirEffect::BackendRead { addr: X }]);
        assert!(e.is_busy(X));
        // Backend returns data; transaction resumes and grants.
        let eff = e.backend_read_done(
            X,
            7,
            BackendPerms {
                read_ok: true,
                write_ok: false,
            },
        );
        assert!(matches!(
            sends(&eff)[0],
            (
                A,
                HostMsg::Data {
                    data: 7,
                    grant: Grant::S,
                    ..
                }
            )
        ));
        unblock(&mut e, A, X, StableState::S);
        assert_eq!(e.holders(X), Holders::Shared(BTreeSet::from([A])));
    }

    #[test]
    fn getm_invalidates_sharers() {
        let mut e = mesi_engine();
        // A and B become sharers (sequentially, with unblocks).
        let perms_s = BackendPerms {
            read_ok: true,
            write_ok: false,
        };
        e.handle_host(A, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, A, X, StableState::S);
        e.handle_host(B, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, B, X, StableState::S);
        // C requests ownership.
        let eff = e.handle_host(C, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        let s = sends(&eff);
        let invs: Vec<_> = s
            .iter()
            .filter(|(_, m)| matches!(m, HostMsg::Inv { requestor, .. } if *requestor == C))
            .map(|(d, _)| *d)
            .collect();
        assert_eq!(invs.len(), 2);
        assert!(invs.contains(&A) && invs.contains(&B));
        assert!(s.iter().any(|(d, m)| *d == C
            && matches!(
                m,
                HostMsg::Data {
                    grant: Grant::M,
                    acks: 2,
                    ..
                }
            )));
        assert_eq!(e.holders(X), Holders::Exclusive(C));
    }

    #[test]
    fn getm_upgrade_excludes_requester_from_invs() {
        let mut e = mesi_engine();
        let perms_s = BackendPerms {
            read_ok: true,
            write_ok: false,
        };
        e.handle_host(A, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, A, X, StableState::S);
        e.handle_host(B, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, B, X, StableState::S);
        let eff = e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        let s = sends(&eff);
        // only B is invalidated; A gets acks=1
        assert!(s
            .iter()
            .any(|(d, m)| *d == B && matches!(m, HostMsg::Inv { .. })));
        assert!(!s
            .iter()
            .any(|(d, m)| *d == A && matches!(m, HostMsg::Inv { .. })));
        assert!(s
            .iter()
            .any(|(d, m)| *d == A && matches!(m, HostMsg::Data { acks: 1, .. })));
    }

    #[test]
    fn gets_with_owner_forwards_three_hop() {
        let mut e = mesi_engine();
        e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        unblock(&mut e, A, X, StableState::M);
        let eff = e.handle_host(B, HostMsg::GetS { addr: X }, BackendPerms::ALL);
        let s = sends(&eff);
        assert_eq!(s.len(), 1);
        assert!(matches!(
            s[0],
            (A, HostMsg::FwdGetS { requestor, grant: Grant::S, .. }) if requestor == B
        ));
        // MESI: owner demotes to sharer; dir expects both as sharers.
        assert_eq!(e.holders(X), Holders::Shared(BTreeSet::from([A, B])));
    }

    #[test]
    fn moesi_gets_with_owner_keeps_owner() {
        let mut e = moesi_engine();
        e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        unblock(&mut e, A, X, StableState::M);
        let eff = e.handle_host(B, HostMsg::GetS { addr: X }, BackendPerms::ALL);
        sends(&eff);
        assert_eq!(e.holders(X), Holders::Owned(A, BTreeSet::from([B])));
    }

    #[test]
    fn mesif_forwarder_supplies_data() {
        let mut e = mesif_engine();
        let perms_s = BackendPerms {
            read_ok: true,
            write_ok: false,
        };
        // A becomes the first sharer (no F yet — dir supplied).
        e.handle_host(A, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, A, X, StableState::S);
        // B asks: dir supplies, B becomes F.
        let eff = e.handle_host(B, HostMsg::GetS { addr: X }, perms_s);
        assert!(matches!(
            sends(&eff)[0],
            (
                B,
                HostMsg::Data {
                    grant: Grant::F,
                    ..
                }
            )
        ));
        unblock(&mut e, B, X, StableState::F);
        // C asks: forwarded to B (the F holder), C becomes the new F.
        let eff = e.handle_host(C, HostMsg::GetS { addr: X }, perms_s);
        assert!(matches!(
            sends(&eff)[0],
            (B, HostMsg::FwdGetS { requestor, grant: Grant::F, .. }) if requestor == C
        ));
    }

    #[test]
    fn requests_queue_while_busy() {
        let mut e = mesi_engine();
        e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        // B's request queues (no effects yet).
        let eff = e.handle_host(B, HostMsg::GetS { addr: X }, BackendPerms::ALL);
        assert!(sends(&eff).is_empty());
        assert_eq!(e.stalled_requests, 1);
        // A unblocks -> B's queued request launches (FwdGetS to A).
        let eff = e.handle_host(
            A,
            HostMsg::Unblock {
                addr: X,
                to_state: StableState::M,
            },
            BackendPerms::ALL,
        );
        assert!(sends(&eff)
            .iter()
            .any(|(d, m)| *d == A && matches!(m, HostMsg::FwdGetS { .. })));
    }

    #[test]
    fn put_m_from_owner_updates_data() {
        let mut e = mesi_engine();
        e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        unblock(&mut e, A, X, StableState::M);
        let eff = e.handle_host(
            A,
            HostMsg::PutM {
                addr: X,
                data: 99,
                poisoned: false,
            },
            BackendPerms::ALL,
        );
        assert!(eff.contains(&DirEffect::DataUpdated {
            addr: X,
            data: 99,
            poisoned: false
        }));
        assert!(sends(&eff)
            .iter()
            .any(|(d, m)| *d == A && matches!(m, HostMsg::PutAck { .. })));
        assert_eq!(e.holders(X), Holders::None);
        assert_eq!(e.data(X), 99);
    }

    #[test]
    fn stale_put_m_is_acked_but_ignored() {
        let mut e = mesi_engine();
        e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        unblock(&mut e, A, X, StableState::M);
        // B takes ownership (3-hop via A).
        e.handle_host(B, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        // A's eviction crossed the FwdGetM: stale PutM arrives.
        let eff = e.handle_host(
            A,
            HostMsg::PutM {
                addr: X,
                data: 123,
                poisoned: false,
            },
            BackendPerms::ALL,
        );
        assert!(!eff
            .iter()
            .any(|x| matches!(x, DirEffect::DataUpdated { .. })));
        assert!(sends(&eff)
            .iter()
            .any(|(d, m)| *d == A && matches!(m, HostMsg::PutAck { .. })));
        assert_eq!(e.holders(X), Holders::Exclusive(B));
    }

    #[test]
    fn recall_exclusive_from_owner_collects_dirty_data() {
        let mut e = mesi_engine();
        e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        unblock(&mut e, A, X, StableState::M);
        let eff = e.recall(X, RecallKind::Exclusive);
        assert!(matches!(
            sends(&eff)[0],
            (A, HostMsg::FwdGetM { requestor, .. }) if requestor == DIR
        ));
        // Owner responds with dirty data addressed to the directory.
        let eff = e.handle_host(
            A,
            HostMsg::Data {
                addr: X,
                data: 55,
                grant: Grant::M,
                acks: 0,
                dirty: true,
                poisoned: false,
            },
            BackendPerms::ALL,
        );
        assert!(eff.iter().any(|x| matches!(
            x,
            DirEffect::RecallDone {
                kind: RecallKind::Exclusive,
                data: 55,
                was_dirty: true,
                ..
            }
        )));
        assert_eq!(e.holders(X), Holders::None);
    }

    #[test]
    fn recall_exclusive_invalidates_sharers() {
        let mut e = mesi_engine();
        let perms_s = BackendPerms {
            read_ok: true,
            write_ok: false,
        };
        e.handle_host(A, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, A, X, StableState::S);
        e.handle_host(B, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, B, X, StableState::S);
        let eff = e.recall(X, RecallKind::Exclusive);
        assert_eq!(sends(&eff).len(), 2);
        let eff = e.handle_host(A, HostMsg::InvAck { addr: X }, BackendPerms::ALL);
        assert!(
            eff.is_empty()
                || !eff
                    .iter()
                    .any(|x| matches!(x, DirEffect::RecallDone { .. }))
        );
        let eff = e.handle_host(B, HostMsg::InvAck { addr: X }, BackendPerms::ALL);
        assert!(eff.iter().any(|x| matches!(
            x,
            DirEffect::RecallDone {
                was_dirty: false,
                ..
            }
        )));
    }

    #[test]
    fn recall_shared_on_clean_line_is_immediate() {
        let mut e = mesi_engine();
        let perms_s = BackendPerms {
            read_ok: true,
            write_ok: false,
        };
        e.handle_host(A, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, A, X, StableState::S);
        let eff = e.recall(X, RecallKind::Shared);
        assert!(eff
            .iter()
            .any(|x| matches!(x, DirEffect::RecallDone { .. })));
        // Sharers keep their copies.
        assert_eq!(e.holders(X), Holders::Shared(BTreeSet::from([A])));
    }

    #[test]
    fn recall_waits_for_unblock_phase_transaction() {
        let mut e = mesi_engine();
        e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        // recall arrives mid-transaction: must queue
        let eff = e.recall(X, RecallKind::Exclusive);
        assert!(eff.is_empty());
        // unblock: recall launches (FwdGetM to new owner A)
        let eff = e.handle_host(
            A,
            HostMsg::Unblock {
                addr: X,
                to_state: StableState::M,
            },
            BackendPerms::ALL,
        );
        assert!(sends(&eff).iter().any(|(d, m)| *d == A
            && matches!(m, HostMsg::FwdGetM { requestor, .. } if *requestor == DIR)));
    }

    #[test]
    fn recall_overlaps_backend_suspended_transaction() {
        // The Fig. 2 "snoop first" conflict: A's GetM is suspended waiting
        // for global ownership; the recall must still run immediately.
        let mut e = mesi_engine();
        let perms_s = BackendPerms {
            read_ok: true,
            write_ok: false,
        };
        e.handle_host(B, HostMsg::GetS { addr: X }, perms_s);
        unblock(&mut e, B, X, StableState::S);
        let eff = e.handle_host(A, HostMsg::GetM { addr: X }, perms_s);
        assert_eq!(eff, vec![DirEffect::BackendWrite { addr: X }]);
        // Recall runs despite the suspended transaction, invalidating B.
        let eff = e.recall(X, RecallKind::Exclusive);
        assert!(sends(&eff)
            .iter()
            .any(|(d, m)| *d == B && matches!(m, HostMsg::Inv { .. })));
        let eff = e.handle_host(B, HostMsg::InvAck { addr: X }, BackendPerms::ALL);
        assert!(eff
            .iter()
            .any(|x| matches!(x, DirEffect::RecallDone { .. })));
        // Later, the backend grants ownership; A's GetM resumes with no
        // sharers left to invalidate.
        let eff = e.backend_write_done(X, 5, BackendPerms::ALL);
        assert!(sends(&eff).iter().any(|(d, m)| *d == A
            && matches!(
                m,
                HostMsg::Data {
                    grant: Grant::M,
                    acks: 0,
                    ..
                }
            )));
    }

    #[test]
    fn rcc_recall_is_immediate_and_write_through_updates() {
        let mut e = rcc_engine();
        e.seed_data(X, 1);
        // write-through with global permission
        let eff = e.handle_host(
            A,
            HostMsg::WriteThrough { addr: X, data: 9 },
            BackendPerms::ALL,
        );
        assert!(eff.contains(&DirEffect::DataUpdated {
            addr: X,
            data: 9,
            poisoned: false
        }));
        assert!(sends(&eff)
            .iter()
            .any(|(d, m)| *d == A && matches!(m, HostMsg::WtAck { .. })));
        // recall completes immediately (self-invalidation protocol)
        let eff = e.recall(X, RecallKind::Exclusive);
        assert!(eff
            .iter()
            .any(|x| matches!(x, DirEffect::RecallDone { data: 9, .. })));
    }

    #[test]
    fn rcc_write_through_without_permission_delegates() {
        let mut e = rcc_engine();
        let perms = BackendPerms {
            read_ok: true,
            write_ok: false,
        };
        let eff = e.handle_host(A, HostMsg::WriteThrough { addr: X, data: 3 }, perms);
        assert_eq!(eff, vec![DirEffect::BackendWrite { addr: X }]);
        let eff = e.backend_write_done(X, 0, BackendPerms::ALL);
        assert!(sends(&eff)
            .iter()
            .any(|(d, m)| *d == A && matches!(m, HostMsg::WtAck { .. })));
        assert_eq!(e.data(X), 3);
    }

    #[test]
    fn atomic_rmw_returns_old_value() {
        let mut e = rcc_engine();
        e.seed_data(X, 10);
        let eff = e.handle_host(A, HostMsg::AtomicRmw { addr: X, add: 5 }, BackendPerms::ALL);
        assert!(sends(&eff)
            .iter()
            .any(|(d, m)| *d == A && matches!(m, HostMsg::AtomicResp { old: 10, .. })));
        assert_eq!(e.data(X), 15);
    }

    #[test]
    fn idle_reports_pending_work() {
        let mut e = mesi_engine();
        assert!(e.idle());
        e.handle_host(A, HostMsg::GetM { addr: X }, BackendPerms::ALL);
        assert!(!e.idle());
        unblock(&mut e, A, X, StableState::M);
        assert!(e.idle());
    }
}
