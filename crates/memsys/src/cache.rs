//! Set-associative cache array with LRU replacement.
//!
//! Used for the private L1s (Table III: 128 KiB, 8-way) and for C³'s CXL
//! cache. The array stores an arbitrary per-line payload `T` (coherence
//! state + data); replacement policy is true LRU via a monotonic stamp.

use std::fmt;

use c3_protocol::ops::Addr;

/// One resident line.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry<T> {
    addr: Addr,
    stamp: u64,
    payload: T,
}

/// A set-associative, LRU-replaced cache array keyed by line address.
///
/// # Examples
///
/// ```
/// use c3_memsys::cache::CacheArray;
/// use c3_protocol::ops::Addr;
///
/// let mut c: CacheArray<u32> = CacheArray::new(4, 2);
/// assert!(c.insert(Addr(1), 10).is_none());
/// assert_eq!(c.get(Addr(1)), Some(&10));
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray<T> {
    sets: usize,
    ways: usize,
    entries: Vec<Vec<Entry<T>>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<T> CacheArray<T> {
    /// Create an array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero or `sets` is not a power of two.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheArray {
            sets,
            ways,
            entries: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Construct from a capacity in bytes (64 B lines) and associativity,
    /// as configured in Table III.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a power-of-two set count.
    pub fn with_capacity_bytes(bytes: usize, ways: usize) -> Self {
        let lines = bytes / Addr::LINE_BYTES as usize;
        assert!(lines >= ways, "capacity smaller than one set");
        let sets = (lines / ways).next_power_of_two();
        CacheArray::new(sets, ways)
    }

    fn set_of(&self, addr: Addr) -> usize {
        // Addresses are line indices already; mix to spread strided patterns.
        let x = addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((x >> 32) as usize) & (self.sets - 1)
    }

    /// Number of lines the array can hold.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of lines currently resident.
    pub fn len(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a line without touching LRU state.
    pub fn peek(&self, addr: Addr) -> Option<&T> {
        self.entries[self.set_of(addr)]
            .iter()
            .find(|e| e.addr == addr)
            .map(|e| &e.payload)
    }

    /// Look up a line, updating LRU and hit/miss statistics.
    pub fn get(&mut self, addr: Addr) -> Option<&T> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(addr);
        match self.entries[set].iter_mut().find(|e| e.addr == addr) {
            Some(e) => {
                e.stamp = tick;
                self.hits += 1;
                Some(&e.payload)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Mutable lookup, updating LRU (no hit/miss accounting — state
    /// updates should not double-count).
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut T> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(addr);
        self.entries[set]
            .iter_mut()
            .find(|e| e.addr == addr)
            .map(|e| {
                e.stamp = tick;
                &mut e.payload
            })
    }

    /// The line that would be evicted to make room for `addr`, if the set
    /// is full and `addr` is absent.
    pub fn victim(&self, addr: Addr) -> Option<(Addr, &T)> {
        let set = &self.entries[self.set_of(addr)];
        if set.len() < self.ways || set.iter().any(|e| e.addr == addr) {
            return None;
        }
        set.iter()
            .min_by_key(|e| e.stamp)
            .map(|e| (e.addr, &e.payload))
    }

    /// Insert (or replace) a line, returning the evicted `(addr, payload)`
    /// if the set was full.
    pub fn insert(&mut self, addr: Addr, payload: T) -> Option<(Addr, T)> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(addr);
        let set = &mut self.entries[set_idx];
        if let Some(e) = set.iter_mut().find(|e| e.addr == addr) {
            e.payload = payload;
            e.stamp = tick;
            return None;
        }
        let evicted = if set.len() == ways {
            let (i, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .expect("full set is non-empty");
            let old = set.swap_remove(i);
            Some((old.addr, old.payload))
        } else {
            None
        };
        set.push(Entry {
            addr,
            stamp: tick,
            payload,
        });
        evicted
    }

    /// Remove a line, returning its payload.
    pub fn remove(&mut self, addr: Addr) -> Option<T> {
        let set_idx = self.set_of(addr);
        let set = &mut self.entries[set_idx];
        let i = set.iter().position(|e| e.addr == addr)?;
        Some(set.swap_remove(i).payload)
    }

    /// Iterate over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &T)> {
        self.entries
            .iter()
            .flat_map(|s| s.iter().map(|e| (e.addr, &e.payload)))
    }

    /// Addresses of all resident lines (stable order not guaranteed).
    pub fn addresses(&self) -> Vec<Addr> {
        self.iter().map(|(a, _)| a).collect()
    }

    /// Lifetime hit count (via [`CacheArray::get`]).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count (via [`CacheArray::get`]).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl<T> fmt::Display for CacheArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache {}x{} ({} resident, {} hits, {} misses)",
            self.sets,
            self.ways,
            self.len(),
            self.hits,
            self.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c: CacheArray<u32> = CacheArray::new(8, 2);
        c.insert(Addr(5), 50);
        assert_eq!(c.get(Addr(5)), Some(&50));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn miss_counts() {
        let mut c: CacheArray<u32> = CacheArray::new(8, 2);
        assert_eq!(c.get(Addr(5)), None);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // Single set, 2 ways: touching A keeps it; B is evicted by C.
        let mut c: CacheArray<&'static str> = CacheArray::new(1, 2);
        c.insert(Addr(1), "a");
        c.insert(Addr(2), "b");
        assert!(c.get(Addr(1)).is_some()); // A is now MRU
        let evicted = c.insert(Addr(3), "c").expect("set was full");
        assert_eq!(evicted, (Addr(2), "b"));
        assert!(c.peek(Addr(1)).is_some());
        assert!(c.peek(Addr(3)).is_some());
    }

    #[test]
    fn victim_prediction_matches_insert() {
        let mut c: CacheArray<u32> = CacheArray::new(1, 2);
        c.insert(Addr(1), 1);
        c.insert(Addr(2), 2);
        let (va, _) = c.victim(Addr(3)).expect("full set has a victim");
        let (ea, _) = c.insert(Addr(3), 3).expect("eviction");
        assert_eq!(va, ea);
    }

    #[test]
    fn no_victim_when_set_has_space_or_line_present() {
        let mut c: CacheArray<u32> = CacheArray::new(1, 2);
        c.insert(Addr(1), 1);
        assert!(c.victim(Addr(2)).is_none()); // free way
        c.insert(Addr(2), 2);
        assert!(c.victim(Addr(1)).is_none()); // already resident
    }

    #[test]
    fn reinsert_updates_payload_without_eviction() {
        let mut c: CacheArray<u32> = CacheArray::new(1, 1);
        c.insert(Addr(1), 1);
        assert!(c.insert(Addr(1), 2).is_none());
        assert_eq!(c.peek(Addr(1)), Some(&2));
    }

    #[test]
    fn remove_frees_way() {
        let mut c: CacheArray<u32> = CacheArray::new(1, 1);
        c.insert(Addr(1), 1);
        assert_eq!(c.remove(Addr(1)), Some(1));
        assert!(c.is_empty());
        assert!(c.insert(Addr(2), 2).is_none());
    }

    #[test]
    fn capacity_bytes_geometry() {
        // 128 KiB, 8-way, 64 B lines (Table III L1): 2048 lines, 256 sets.
        let c: CacheArray<u32> = CacheArray::with_capacity_bytes(128 * 1024, 8);
        assert_eq!(c.capacity(), 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _c: CacheArray<u32> = CacheArray::new(3, 2);
    }

    #[test]
    fn iter_covers_all_lines() {
        let mut c: CacheArray<u32> = CacheArray::new(4, 2);
        for i in 0..5 {
            c.insert(Addr(i), i as u32);
        }
        assert_eq!(c.iter().count(), c.len());
        assert_eq!(c.addresses().len(), c.len());
    }
}
