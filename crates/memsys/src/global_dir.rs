//! The baseline global directory (MESI-MESI-MESI top level).
//!
//! In the paper's baseline configuration the two clusters are joined by a
//! *hierarchical MESI* global protocol instead of CXL; the C³ bridges act
//! as passive caches of this directory. The component wraps
//! [`crate::direngine::DirEngine`] with an always-granting backend (it sits
//! next to the memory device, so every line is readable and writable) and
//! a DDR5-like access latency applied to directory-sourced data responses
//! (Table III: 10 ns).

use std::any::Any;

use c3_protocol::msg::{HostMsg, SysMsg};
use c3_protocol::ssp::DirPolicy;
use c3_sim::component::{Component, ComponentId, Ctx};
use c3_sim::stats::Report;
use c3_sim::time::Delay;
use c3_sim::trace::InflightTxn;

use crate::direngine::{BackendPerms, DirEffect, DirEngine};

/// Global directory component for the hierarchical host-protocol baseline.
#[derive(Debug)]
pub struct GlobalMesiDir {
    name: String,
    engine: Option<DirEngine>,
    policy: DirPolicy,
    mem_latency: Delay,
    data_responses: u64,
    /// Emit region-store footprint gauges/report lines. Off by default:
    /// the extra keys would shift the pinned report/metrics fingerprints
    /// of existing configurations.
    state_metrics: bool,
}

impl GlobalMesiDir {
    /// Create the directory; `policy` is the global protocol's directory
    /// policy (MESI for the paper's baseline), `mem_latency` the DDR access
    /// time added to directory-sourced data.
    pub fn new(name: impl Into<String>, policy: DirPolicy, mem_latency: Delay) -> Self {
        GlobalMesiDir {
            name: name.into(),
            engine: None,
            policy,
            mem_latency,
            data_responses: 0,
            state_metrics: false,
        }
    }

    /// Opt in to coherence-state footprint observability: resident-line /
    /// resident-region gauges in telemetry and peak-state-bytes report
    /// lines.
    pub fn set_state_metrics(&mut self, on: bool) {
        self.state_metrics = on;
    }

    fn engine(&mut self, self_id: ComponentId) -> &mut DirEngine {
        if self.engine.is_none() {
            self.engine = Some(DirEngine::new(self.policy, self_id));
        }
        self.engine.as_mut().expect("just initialized")
    }

    /// Seed initial memory contents (tests / litmus initialization).
    pub fn seed_data(&mut self, self_id: ComponentId, addr: c3_protocol::Addr, data: u64) {
        self.engine(self_id).seed_data(addr, data);
    }

    /// Final memory contents of a line.
    pub fn data(&self, addr: c3_protocol::Addr) -> u64 {
        self.engine.as_ref().map(|e| e.data(addr)).unwrap_or(0)
    }

    fn apply(&mut self, effects: Vec<DirEffect>, ctx: &mut Ctx<'_, SysMsg>) {
        for e in effects {
            match e {
                DirEffect::Send { dst, msg } => {
                    if matches!(msg, HostMsg::Data { .. }) {
                        // Data supplied by the directory comes out of the
                        // memory device: add the DDR access latency.
                        self.data_responses += 1;
                        ctx.send_after(dst, SysMsg::Host(msg), self.mem_latency);
                    } else {
                        ctx.send(dst, SysMsg::Host(msg));
                    }
                }
                DirEffect::DataUpdated { .. } | DirEffect::TxnDone { .. } => {}
                DirEffect::BackendRead { .. } | DirEffect::BackendWrite { .. } => {
                    unreachable!("top-level directory always has permission")
                }
                DirEffect::RecallDone { .. } => {
                    unreachable!("nothing recalls the top-level directory")
                }
            }
        }
    }
}

impl Component<SysMsg> for GlobalMesiDir {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn handle(&mut self, msg: SysMsg, src: ComponentId, ctx: &mut Ctx<'_, SysMsg>) {
        c3_sim::sim_trace!("[{}] {} <- {src}: {msg:?}", ctx.now, self.name);
        let SysMsg::Host(h) = msg else {
            panic!("global directory received {msg:?}");
        };
        let self_id = ctx.self_id;
        let effects = self.engine(self_id).handle_host(src, h, BackendPerms::ALL);
        self.apply(effects, ctx);
    }

    fn done(&self) -> bool {
        self.engine.as_ref().map(|e| e.idle()).unwrap_or(true)
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        if let Some(e) = &self.engine {
            out.set(format!("{n}.stalled_requests"), e.stalled_requests as f64);
        }
        out.set(format!("{n}.data_responses"), self.data_responses as f64);
        // Footprint lines exist only when opted in, so default-wired runs
        // keep byte-identical reports (same discipline as the DCOH's
        // resilience counters).
        if self.state_metrics {
            let f = self
                .engine
                .as_ref()
                .map(|e| e.footprint())
                .unwrap_or_default();
            out.set(format!("{n}.touched_lines"), f.touched as f64);
            out.set(format!("{n}.peak_resident_lines"), f.peak_resident as f64);
            out.set(format!("{n}.peak_state_bytes"), f.peak_state_bytes as f64);
        }
    }

    fn metrics(&self, out: &mut c3_sim::metrics::MetricSample) {
        // The engine is created lazily on first traffic; emit zeros until
        // then so the telemetry schema stays fixed across the run.
        let n = &self.name;
        let (lines, busy, queued) = self
            .engine
            .as_ref()
            .map(|e| e.occupancy())
            .unwrap_or((0, 0, 0));
        out.gauge(n, "lines", lines as f64);
        out.gauge(n, "busy_lines", busy as f64);
        out.gauge(n, "queued", queued as f64);
        let (stalled, recalls, br, bw) = self
            .engine
            .as_ref()
            .map(|e| {
                (
                    e.stalled_requests,
                    e.recalls,
                    e.backend_reads,
                    e.backend_writes,
                )
            })
            .unwrap_or((0, 0, 0, 0));
        out.counter(n, "stalled_requests", stalled as f64);
        out.counter(n, "recalls", recalls as f64);
        out.counter(n, "backend_reads", br as f64);
        out.counter(n, "backend_writes", bw as f64);
        out.counter(n, "data_responses", self.data_responses as f64);
        // Opt-in footprint gauges; the flag is fixed for the life of a
        // run, so the telemetry schema stays stable across samples.
        if self.state_metrics {
            let f = self
                .engine
                .as_ref()
                .map(|e| e.footprint())
                .unwrap_or_default();
            out.gauge(n, "resident_lines", f.resident as f64);
            out.gauge(n, "resident_regions", f.regions as f64);
            out.gauge(n, "state_bytes", f.state_bytes as f64);
        }
    }

    fn inflight(&self, self_id: ComponentId, out: &mut Vec<InflightTxn>) {
        let Some(e) = &self.engine else { return };
        for b in e.busy_lines() {
            out.push(InflightTxn {
                component: self_id,
                addr: Some(b.addr.0),
                kind: "directory txn".into(),
                since: None,
                waiting_on: b.waiting_on,
                detail: if b.queued > 0 {
                    format!("{}; {} queued request(s)", b.desc, b.queued)
                } else {
                    b.desc
                },
            });
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
