//! Private (L1) cache controller.
//!
//! A directory-protocol cache controller with explicit transient states,
//! configurable as MESI / MESIF / MOESI (SWMR variants of the same table)
//! or RCC (self-invalidation, §IV-D2 of the paper). One instance per core;
//! Table III: 128 KiB, 8-way, 1-cycle hit latency. The paper's tool models
//! a unified I+D cache per core, and so do we.

use std::any::Any;
use std::collections::VecDeque;

use c3_protocol::msg::{CoreReq, CoreResp, Grant, HostMsg, SysMsg};
use c3_protocol::ops::{Addr, FenceKind, Instr};
use c3_protocol::states::{ProtocolFamily, StableState};
use c3_protocol::table::{
    Action, ProtocolViolation, TransitionRow, TransitionTable, Vnet, ANY_STATE,
};
use c3_sim::component::{Component, ComponentId, Ctx};
use c3_sim::region::{Footprint, RegionEntry, RegionMap};
use c3_sim::stats::{LatencyBands, LatencyHistogram, Report};
use c3_sim::time::{Delay, Time};
use c3_sim::trace::{InflightTxn, TxnId};

use crate::cache::CacheArray;

/// Configuration of one private cache.
#[derive(Clone, Copy, Debug)]
pub struct L1Config {
    /// Coherence protocol variant.
    pub family: ProtocolFamily,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency (Table III: 1 cycle at 2 GHz).
    pub hit_latency: Delay,
    /// The core this cache serves.
    pub core: ComponentId,
    /// The cluster-level directory (LLC controller or C³ bridge).
    pub dir: ComponentId,
}

impl L1Config {
    /// Table III defaults: 128 KiB, 8-way, 1-cycle hits.
    pub fn paper_defaults(family: ProtocolFamily, core: ComponentId, dir: ComponentId) -> Self {
        L1Config {
            family,
            sets: 256,
            ways: 8,
            hit_latency: Delay::from_cycles(1, 2_000),
            core,
            dir,
        }
    }
}

/// Kind of memory access, for miss statistics (Fig. 11's instruction
/// breakdown).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Load.
    Load,
    /// Store.
    Store,
    /// Read-modify-write.
    Rmw,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Line {
    state: StableState,
    data: u64,
    /// CXL-style poison mark: the value arrived corrupted. Reads complete
    /// (and are counted) instead of aborting; a full-line store overwrites
    /// the payload and clears the mark.
    poisoned: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(non_camel_case_types, clippy::upper_case_acronyms)]
enum TState {
    /// GetS issued from I; waiting for data.
    IS_D,
    /// GetM issued from I; waiting for data (+acks).
    IM_AD,
    /// Data received; waiting for remaining invalidation acks.
    IM_A,
    /// GetM issued while holding a readable copy (S/F/O upgrade).
    SM_AD,
    /// Upgrade data received; waiting for remaining acks.
    SM_A,
    /// Dirty eviction issued (PutM); waiting for PutAck.
    MI_A,
    /// Owned eviction issued (PutO); waiting for PutAck.
    OI_A,
    /// Clean-exclusive eviction issued (PutE); waiting for PutAck.
    EI_A,
    /// Shared eviction issued (PutS); waiting for PutAck.
    SI_A,
    /// Eviction superseded by a remote transfer; still awaiting PutAck.
    II_A,
    /// RCC write-through in flight; waiting for WtAck.
    WT_A,
    /// RCC remote atomic in flight; waiting for AtomicResp.
    AT_D,
}

impl TState {
    /// Table-state name (allocation-free `{:?}` equivalent).
    fn name(self) -> &'static str {
        match self {
            TState::IS_D => "IS_D",
            TState::IM_AD => "IM_AD",
            TState::IM_A => "IM_A",
            TState::SM_AD => "SM_AD",
            TState::SM_A => "SM_A",
            TState::MI_A => "MI_A",
            TState::OI_A => "OI_A",
            TState::EI_A => "EI_A",
            TState::SI_A => "SI_A",
            TState::II_A => "II_A",
            TState::WT_A => "WT_A",
            TState::AT_D => "AT_D",
        }
    }
}

/// Table-state name of a stable state (allocation-free).
fn stable_name(s: StableState) -> &'static str {
    match s {
        StableState::I => "I",
        StableState::S => "S",
        StableState::E => "E",
        StableState::O => "O",
        StableState::M => "M",
        StableState::F => "F",
    }
}

#[derive(Debug)]
struct Mshr {
    tstate: TState,
    data: u64,
    /// Invalidation-ack balance: `Data.acks` adds, each InvAck subtracts.
    acks: i32,
    data_received: bool,
    /// The core request that opened this MSHR (if core-initiated).
    initiator: Option<CoreReq>,
    /// Core requests to the same line, deferred until this MSHR retires.
    pending: VecDeque<CoreReq>,
    /// Whether this write-through belongs to an in-progress release flush.
    from_release: bool,
    /// Whether the fill data (or the evicted line this MSHR drains) is
    /// poisoned.
    poisoned: bool,
    started: Time,
    /// Trace span key: the miss transaction this MSHR carries.
    txn: TxnId,
}

impl Default for Mshr {
    fn default() -> Self {
        Mshr {
            tstate: TState::IS_D,
            data: 0,
            acks: 0,
            data_received: false,
            initiator: None,
            pending: VecDeque::new(),
            from_release: false,
            poisoned: false,
            started: Time::ZERO,
            txn: TxnId(0),
        }
    }
}

/// MSHRs exist only while a miss is in flight: they are opened with
/// [`RegionMap::entry`], closed with [`RegionMap::take`], and never
/// demote to a summary — the region store serves purely as a compact
/// presence-tracked slab here.
impl RegionEntry for Mshr {
    type Summary = ();

    fn try_demote(&self) -> Option<()> {
        None
    }

    fn restore(&mut self, _: ()) {
        // `take` already reset the slot to `Mshr::default()`; nothing is
        // ever stored in a summary, so a fresh entry needs no field work.
    }
}

#[derive(Debug)]
struct ReleaseOp {
    tag: u64,
    remaining: u32,
    /// Deferred load to run once the release drains (store-release's
    /// response, or a fence completion).
    respond_value: u64,
}

/// Per-access-kind miss statistics.
#[derive(Debug, Default, Clone)]
pub struct MissStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Miss latency distribution (Fig. 11 bands).
    pub bands: LatencyBands,
    /// Full miss-latency distribution (log2 buckets, p50/p95/p99/max).
    pub hist: LatencyHistogram,
}

/// The private cache controller component.
#[derive(Debug)]
pub struct L1Controller {
    cfg: L1Config,
    name: String,
    array: CacheArray<Line>,
    mshrs: RegionMap<Mshr>,
    release: Option<ReleaseOp>,
    /// Stats per access kind (indexed by [`AccessKind`]).
    stats: [MissStats; 3],
    writebacks: u64,
    invalidations_received: u64,
    self_invalidations: u64,
    poisoned_reads: u64,
    /// Structured protocol violations observed (message in a state the
    /// transition table forbids). Non-empty keeps `done()` false so the
    /// run ends in a deadlock post-mortem that names the violation.
    violations: Vec<ProtocolViolation>,
    /// Emit region-store footprint gauges/report lines. Off by default:
    /// the extra keys would shift the pinned report/metrics fingerprints
    /// of existing configurations.
    state_metrics: bool,
}

impl L1Controller {
    /// Create a controller; `name` is used in reports (`"c0.l1"` etc.).
    pub fn new(name: impl Into<String>, cfg: L1Config) -> Self {
        L1Controller {
            array: CacheArray::new(cfg.sets, cfg.ways),
            cfg,
            name: name.into(),
            mshrs: RegionMap::new(),
            release: None,
            stats: Default::default(),
            writebacks: 0,
            invalidations_received: 0,
            self_invalidations: 0,
            poisoned_reads: 0,
            violations: Vec::new(),
            state_metrics: false,
        }
    }

    /// Opt in to MSHR region-store footprint observability (resident
    /// gauges in telemetry, peak lines in the report).
    pub fn set_state_metrics(&mut self, on: bool) {
        self.state_metrics = on;
    }

    /// Protocol violations recorded so far (empty in a correct run).
    pub fn violations(&self) -> &[ProtocolViolation] {
        &self.violations
    }

    /// Record a structured protocol violation instead of panicking: the
    /// offending message is dropped, the violation is traced, and the
    /// controller stops reporting `done` so the existing deadlock
    /// post-mortem surfaces it with full context.
    fn violation(&mut self, state: &str, event: &str, addr: Addr, ctx: &mut Ctx<'_, SysMsg>) {
        let v = ProtocolViolation {
            component: self.name.clone(),
            state: state.to_string(),
            event: event.to_string(),
            addr,
        };
        ctx.trace_instant("violation", v.to_string());
        // Conformance, rejection direction: whatever the handler refuses,
        // the table must also refuse (a `Forbidden` or missing row).
        #[cfg(debug_assertions)]
        debug_assert!(
            !l1_cached_table(self.cfg.family).permits(&v.state, &v.event),
            "{}: handler rejected ({} x {}) but the table permits it",
            self.name,
            v.state,
            v.event,
        );
        self.violations.push(v);
    }

    /// The table-level state of `addr`: the MSHR transient state if a
    /// transaction is in flight, else the resident stable state, else I.
    /// Allocation-free — it feeds the per-event debug conformance assert.
    fn table_state(&self, addr: Addr) -> &'static str {
        if let Some(m) = self.mshrs.get(addr.0) {
            m.tstate.name()
        } else {
            stable_name(self.line_state(addr))
        }
    }

    /// Debug-mode conformance check: every dynamic dispatch must match a
    /// non-forbidden row of the declarative [`l1_transition_table`].
    #[cfg(debug_assertions)]
    fn assert_conforms(&self, event: &str, addr: Addr) {
        let table = l1_cached_table(self.cfg.family);
        let state = self.table_state(addr);
        debug_assert!(
            table.permits(state, event),
            "{}: dynamic step ({state} x {event}) for {addr} matches no {} table row",
            self.name,
            table.controller,
        );
    }

    /// Debug-mode quiescence check (PR-9 region summaries): a line that
    /// just shed its MSHR must land in a state whose `Quiesce` table row
    /// permits dropping the resident record.
    #[cfg(debug_assertions)]
    fn assert_quiesced(&self, addr: Addr) {
        let table = l1_cached_table(self.cfg.family);
        let state = self.table_state(addr);
        debug_assert!(
            table.permits(state, "Quiesce"),
            "{}: MSHR retired for {addr} but {state} has no permitting Quiesce row in the {} table",
            self.name,
            table.controller,
        );
    }

    /// Miss statistics for one access kind.
    pub fn stats(&self, kind: AccessKind) -> &MissStats {
        &self.stats[kind as usize]
    }

    /// MSHR region-store footprint snapshot (touched/resident lines,
    /// state bytes, with peaks).
    pub fn mshr_footprint(&self) -> Footprint {
        self.mshrs.footprint()
    }

    /// Stable state currently held for `addr` (I if absent or transient).
    pub fn line_state(&self, addr: Addr) -> StableState {
        self.array
            .peek(addr)
            .map(|l| l.state)
            .unwrap_or(StableState::I)
    }

    /// Stable state and data currently held for `addr`, if resident.
    pub fn line(&self, addr: Addr) -> Option<(StableState, u64)> {
        self.array.peek(addr).map(|l| (l.state, l.data))
    }

    /// Whether the resident copy of `addr` carries a poison mark.
    pub fn line_poisoned(&self, addr: Addr) -> bool {
        self.array.peek(addr).is_some_and(|l| l.poisoned)
    }

    /// Addresses of every resident poisoned line.
    pub fn poisoned_lines(&self) -> Vec<Addr> {
        self.array
            .iter()
            .filter(|(_, l)| l.poisoned)
            .map(|(a, _)| a)
            .collect()
    }

    /// Loads that returned poisoned data (graceful degradation counter).
    pub fn poisoned_reads(&self) -> u64 {
        self.poisoned_reads
    }

    fn kind_of(instr: &Instr) -> AccessKind {
        match instr {
            Instr::Load { .. } => AccessKind::Load,
            // RFO prefetches are accounted as the store misses they absorb.
            Instr::Store { .. } | Instr::Prefetch { .. } => AccessKind::Store,
            _ => AccessKind::Rmw,
        }
    }

    fn respond(&self, req: &CoreReq, value: u64, ctx: &mut Ctx<'_, SysMsg>) {
        ctx.send_direct(
            self.cfg.core,
            SysMsg::CoreResp(CoreResp {
                tag: req.tag,
                value,
            }),
            self.cfg.hit_latency,
        );
    }

    fn send_dir(&self, msg: HostMsg, ctx: &mut Ctx<'_, SysMsg>) {
        ctx.send(self.cfg.dir, SysMsg::Host(msg));
    }

    /// Tell the core a line was lost (TSO cores squash speculative loads).
    fn hint_core(&self, addr: Addr, ctx: &mut Ctx<'_, SysMsg>) {
        ctx.send_direct(
            self.cfg.core,
            SysMsg::InvHint { addr },
            self.cfg.hit_latency,
        );
    }

    /// Allocate an MSHR for `addr`, opening its trace span. Every miss
    /// transaction this cache carries goes through here, so the span
    /// begin/end pairs stay balanced with MSHR lifetime.
    fn open_mshr(
        &mut self,
        addr: Addr,
        tstate: TState,
        data: u64,
        initiator: Option<CoreReq>,
        from_release: bool,
        ctx: &mut Ctx<'_, SysMsg>,
    ) {
        let txn = ctx.next_txn();
        if ctx.tracing() {
            let name = format!("{tstate:?} {addr}");
            ctx.trace_begin(txn, "l1", name);
        }
        *self.mshrs.entry(addr.0) = Mshr {
            tstate,
            data,
            acks: 0,
            data_received: false,
            initiator,
            pending: VecDeque::new(),
            from_release,
            poisoned: false,
            started: ctx.now,
            txn,
        };
    }

    /// Make room for `addr`, starting a victim eviction if necessary.
    ///
    /// Lines with an in-flight transaction (SM_AD upgrades, RCC
    /// write-throughs) are skipped: touching them bumps their LRU rank so
    /// the next-least-recent stable line is chosen instead.
    ///
    /// # Panics
    ///
    /// Panics if every way of the set is in a transient state (cannot
    /// happen with ≥ 8 ways and the bounded per-core outstanding window).
    fn ensure_way(&mut self, addr: Addr, ctx: &mut Ctx<'_, SysMsg>) {
        let mut vaddr = None;
        for _ in 0..self.cfg.ways + 1 {
            match self.array.victim(addr) {
                None => return, // free way or line already resident
                Some((v, _)) if self.mshrs.get(v.0).is_some() => {
                    self.array.get_mut(v); // bump LRU, try the next victim
                }
                Some((v, _)) => {
                    vaddr = Some(v);
                    break;
                }
            }
        }
        let vaddr = vaddr.expect("a stable victim must exist");
        #[cfg(debug_assertions)]
        self.assert_conforms("Repl", vaddr);
        let line = self.array.remove(vaddr).expect("victim resident");
        self.hint_core(vaddr, ctx);
        let rcc = self.cfg.family == ProtocolFamily::Rcc;
        let (tstate, msg) = match line.state {
            StableState::S | StableState::F => {
                if rcc {
                    // RCC drops clean lines silently.
                    self.self_invalidations += 1;
                    return;
                }
                (TState::SI_A, HostMsg::PutS { addr: vaddr })
            }
            StableState::E => (TState::EI_A, HostMsg::PutE { addr: vaddr }),
            StableState::M => {
                self.writebacks += 1;
                if rcc {
                    (
                        TState::WT_A,
                        HostMsg::WriteThrough {
                            addr: vaddr,
                            data: line.data,
                        },
                    )
                } else {
                    (
                        TState::MI_A,
                        HostMsg::PutM {
                            addr: vaddr,
                            data: line.data,
                            poisoned: line.poisoned,
                        },
                    )
                }
            }
            StableState::O => {
                self.writebacks += 1;
                (
                    TState::OI_A,
                    HostMsg::PutO {
                        addr: vaddr,
                        data: line.data,
                        poisoned: line.poisoned,
                    },
                )
            }
            StableState::I => unreachable!("I lines are not resident"),
        };
        self.open_mshr(vaddr, tstate, line.data, None, false, ctx);
        // An evicted poisoned line may still be asked to supply data
        // (Fwd* while the Put* drains); keep the mark with the buffer.
        self.mshrs.get_mut(vaddr.0).expect("just opened").poisoned = line.poisoned;
        self.send_dir(msg, ctx);
    }

    /// RCC acquire: drop all clean (S) lines so later loads refetch.
    fn self_invalidate_clean(&mut self) {
        let clean: Vec<Addr> = self
            .array
            .iter()
            .filter(|(_, l)| l.state == StableState::S)
            .map(|(a, _)| a)
            .collect();
        self.self_invalidations += clean.len() as u64;
        for a in clean {
            self.array.remove(a);
        }
    }

    /// RCC release: write all dirty lines through; returns the number of
    /// WtAcks to wait for.
    fn flush_dirty(&mut self, ctx: &mut Ctx<'_, SysMsg>) -> u32 {
        let dirty: Vec<(Addr, u64)> = self
            .array
            .iter()
            .filter(|(_, l)| l.state == StableState::M)
            .map(|(a, l)| (a, l.data))
            .collect();
        let mut count = 0;
        for (a, data) in dirty {
            if self.mshrs.get(a.0).is_some() {
                continue; // already being written through (eviction)
            }
            // Retain a clean copy after the write-through.
            if let Some(l) = self.array.get_mut(a) {
                l.state = StableState::S;
            }
            self.open_mshr(a, TState::WT_A, data, None, true, ctx);
            self.send_dir(HostMsg::WriteThrough { addr: a, data }, ctx);
            self.writebacks += 1;
            count += 1;
        }
        count
    }

    fn start_release(&mut self, tag: u64, respond_value: u64, ctx: &mut Ctx<'_, SysMsg>) {
        debug_assert!(self.release.is_none(), "one release at a time");
        let remaining = self.flush_dirty(ctx);
        if remaining == 0 {
            self.respond(
                &CoreReq {
                    tag,
                    instr: Instr::Work(0),
                },
                respond_value,
                ctx,
            );
        } else {
            self.release = Some(ReleaseOp {
                tag,
                remaining,
                respond_value,
            });
        }
    }

    fn handle_core(&mut self, req: CoreReq, ctx: &mut Ctx<'_, SysMsg>) {
        let rcc = self.cfg.family == ProtocolFamily::Rcc;
        // Fences: RCC caches participate; SWMR caches answer immediately
        // (ordering is enforced in the core pipeline — §IV-D3).
        if let Instr::Fence(kind) = req.instr {
            if !rcc {
                self.respond(&req, 0, ctx);
                return;
            }
            let acquire = matches!(kind, FenceKind::Full | FenceKind::LoadLoad);
            let release = matches!(kind, FenceKind::Full | FenceKind::StoreStore);
            if acquire {
                self.self_invalidate_clean();
            }
            if release {
                self.start_release(req.tag, 0, ctx);
            } else {
                self.respond(&req, 0, ctx);
            }
            return;
        }
        if let Instr::Work(_) = req.instr {
            self.respond(&req, 0, ctx);
            return;
        }
        if let Instr::Prefetch { addr } = req.instr {
            // RFO hint from a TSO store buffer: acquire write permission
            // early so the in-order drain hits. Never queued behind an
            // existing transaction — it is only a hint.
            self.respond(&req, 0, ctx);
            if rcc || self.mshrs.get(addr.0).is_some() {
                return;
            }
            match self.array.get(addr) {
                Some(line) if line.state.can_write() => {}
                present => {
                    let upgrade = present.is_some();
                    self.stats[AccessKind::Store as usize].misses += 1;
                    let tstate = if upgrade {
                        TState::SM_AD
                    } else {
                        TState::IM_AD
                    };
                    self.open_mshr(addr, tstate, 0, Some(req), false, ctx);
                    self.send_dir(HostMsg::GetM { addr }, ctx);
                }
            }
            return;
        }
        let addr = req.instr.addr().expect("memory instruction");
        #[cfg(debug_assertions)]
        {
            let event = match req.instr {
                Instr::Load { .. } => "Load",
                Instr::Store { .. } => "Store",
                Instr::Rmw { .. } => "Rmw",
                _ => unreachable!("handled above"),
            };
            self.assert_conforms(event, addr);
        }
        // Same-line transaction in flight: defer.
        if let Some(mshr) = self.mshrs.get_mut(addr.0) {
            mshr.pending.push_back(req);
            return;
        }
        match req.instr {
            Instr::Load { order, .. } => {
                if rcc && order.is_acquire() {
                    self.self_invalidate_clean();
                }
                match self.array.get(addr) {
                    Some(line) if line.state.can_read() => {
                        let v = line.data;
                        if line.poisoned {
                            self.poisoned_reads += 1;
                        }
                        self.stats[AccessKind::Load as usize].hits += 1;
                        self.respond(&req, v, ctx);
                    }
                    _ => {
                        self.stats[AccessKind::Load as usize].misses += 1;
                        self.open_mshr(addr, TState::IS_D, 0, Some(req), false, ctx);
                        self.send_dir(HostMsg::GetS { addr }, ctx);
                    }
                }
            }
            Instr::Store { val, order, .. } => {
                if rcc {
                    // RCC stores complete locally, without ownership.
                    if self.array.peek(addr).is_none() {
                        self.ensure_way(addr, ctx);
                        self.stats[AccessKind::Store as usize].misses += 1;
                        self.array.insert(
                            addr,
                            Line {
                                state: StableState::M,
                                data: val,
                                poisoned: false,
                            },
                        );
                    } else {
                        self.stats[AccessKind::Store as usize].hits += 1;
                        let line = self.array.get_mut(addr).expect("present");
                        line.state = StableState::M;
                        line.data = val;
                    }
                    if order.is_release() {
                        self.start_release(req.tag, 0, ctx);
                    } else {
                        self.respond(&req, 0, ctx);
                    }
                    return;
                }
                match self.array.get(addr).copied() {
                    Some(line) if line.state.can_write() => {
                        self.stats[AccessKind::Store as usize].hits += 1;
                        let l = self.array.get_mut(addr).expect("present");
                        l.state = StableState::M; // silent E -> M upgrade
                        l.data = val;
                        l.poisoned = false; // full-line overwrite heals poison
                        self.respond(&req, 0, ctx);
                    }
                    Some(_) => {
                        // readable copy: upgrade
                        self.stats[AccessKind::Store as usize].misses += 1;
                        self.open_mshr(addr, TState::SM_AD, 0, Some(req), false, ctx);
                        self.send_dir(HostMsg::GetM { addr }, ctx);
                    }
                    None => {
                        self.stats[AccessKind::Store as usize].misses += 1;
                        self.open_mshr(addr, TState::IM_AD, 0, Some(req), false, ctx);
                        self.send_dir(HostMsg::GetM { addr }, ctx);
                    }
                }
            }
            Instr::Rmw { add, .. } => {
                if rcc {
                    // GPU-style: atomics execute at the shared level.
                    self.array.remove(addr); // local copy would go stale
                    self.stats[AccessKind::Rmw as usize].misses += 1;
                    self.open_mshr(addr, TState::AT_D, add, Some(req), false, ctx);
                    self.send_dir(HostMsg::AtomicRmw { addr, add }, ctx);
                    return;
                }
                match self.array.get(addr).copied() {
                    Some(line) if line.state.can_write() => {
                        self.stats[AccessKind::Rmw as usize].hits += 1;
                        if line.poisoned {
                            // The old value read by the RMW is corrupt, and
                            // so is anything derived from it.
                            self.poisoned_reads += 1;
                        }
                        let l = self.array.get_mut(addr).expect("present");
                        let old = l.data;
                        l.state = StableState::M;
                        l.data = old.wrapping_add(add);
                        self.respond(&req, old, ctx);
                    }
                    Some(_) => {
                        self.stats[AccessKind::Rmw as usize].misses += 1;
                        self.open_mshr(addr, TState::SM_AD, 0, Some(req), false, ctx);
                        self.send_dir(HostMsg::GetM { addr }, ctx);
                    }
                    None => {
                        self.stats[AccessKind::Rmw as usize].misses += 1;
                        self.open_mshr(addr, TState::IM_AD, 0, Some(req), false, ctx);
                        self.send_dir(HostMsg::GetM { addr }, ctx);
                    }
                }
            }
            Instr::Fence(_) | Instr::Work(_) | Instr::Prefetch { .. } => {
                unreachable!("handled above")
            }
        }
    }

    /// Retire an MSHR whose transaction brought the line in with `state`,
    /// apply the initiating access, respond, unblock the directory and
    /// replay deferred requests.
    fn complete_fill(&mut self, addr: Addr, state: StableState, ctx: &mut Ctx<'_, SysMsg>) {
        let mut mshr = self.mshrs.take(addr.0).expect("mshr present");
        let mut line = Line {
            state,
            data: mshr.data,
            poisoned: mshr.poisoned,
        };
        let initiator = mshr.initiator.take().expect("core-initiated fill");
        let kind = Self::kind_of(&initiator.instr);
        let value = match initiator.instr {
            Instr::Load { .. } => {
                if line.poisoned {
                    self.poisoned_reads += 1;
                }
                line.data
            }
            Instr::Store { val, .. } => {
                debug_assert!(state.can_write());
                line.state = StableState::M;
                line.data = val;
                line.poisoned = false; // full-line overwrite heals poison
                0
            }
            Instr::Rmw { add, .. } => {
                debug_assert!(state.can_write());
                if line.poisoned {
                    self.poisoned_reads += 1;
                }
                let old = line.data;
                line.state = StableState::M;
                line.data = old.wrapping_add(add);
                old
            }
            Instr::Prefetch { .. } => {
                // RFO fill: ownership acquired, data untouched. The core
                // was already answered when the hint arrived.
                debug_assert!(state.can_write());
                0
            }
            _ => unreachable!("fills are memory accesses"),
        };
        let final_state = line.state;
        self.ensure_way(addr, ctx);
        let evicted = self.array.insert(addr, line);
        debug_assert!(evicted.is_none(), "way freed by ensure_way");
        #[cfg(debug_assertions)]
        self.assert_quiesced(addr);
        let latency = ctx.now.since(mshr.started);
        self.stats[kind as usize].bands.record(latency);
        self.stats[kind as usize].hist.record(latency);
        ctx.trace_end(mshr.txn);
        if ctx.tracing() {
            ctx.trace_state(Some(addr.0), &mshr.tstate, &final_state);
        }
        if !matches!(initiator.instr, Instr::Prefetch { .. }) {
            self.respond(&initiator, value, ctx);
        }
        if self.cfg.family != ProtocolFamily::Rcc {
            self.send_dir(
                HostMsg::Unblock {
                    addr,
                    to_state: final_state,
                },
                ctx,
            );
        }
        // Replay deferred same-line requests.
        let pending: Vec<CoreReq> = mshr.pending.drain(..).collect();
        for req in pending {
            self.handle_core(req, ctx);
        }
    }

    fn retire_mshr(&mut self, addr: Addr, ctx: &mut Ctx<'_, SysMsg>) {
        let mshr = self.mshrs.take(addr.0).expect("mshr present");
        debug_assert!(mshr.initiator.is_none());
        #[cfg(debug_assertions)]
        self.assert_quiesced(addr);
        ctx.trace_end(mshr.txn);
        for req in mshr.pending {
            self.handle_core(req, ctx);
        }
    }

    fn handle_host(&mut self, msg: HostMsg, _src: ComponentId, ctx: &mut Ctx<'_, SysMsg>) {
        let addr = msg.addr();
        match msg {
            HostMsg::Data {
                data,
                grant,
                acks,
                poisoned,
                ..
            } => {
                if !matches!(
                    self.mshrs.get(addr.0).map(|m| m.tstate),
                    Some(TState::IS_D | TState::IM_AD | TState::SM_AD)
                ) {
                    let state = self.table_state(addr);
                    self.violation(state, "Data", addr, ctx);
                    return;
                }
                #[cfg(debug_assertions)]
                self.assert_conforms("Data", addr);
                let mshr = self.mshrs.get_mut(addr.0).expect("checked above");
                mshr.data = data;
                mshr.poisoned |= poisoned;
                mshr.data_received = true;
                mshr.acks += acks as i32;
                match mshr.tstate {
                    TState::IS_D => {
                        debug_assert_eq!(acks, 0);
                        self.complete_fill(addr, grant.state(), ctx);
                    }
                    TState::IM_AD | TState::SM_AD => {
                        debug_assert_eq!(grant, Grant::M);
                        if mshr.acks <= 0 {
                            self.complete_fill(addr, StableState::M, ctx);
                        } else {
                            mshr.tstate = if mshr.tstate == TState::IM_AD {
                                TState::IM_A
                            } else {
                                TState::SM_A
                            };
                        }
                    }
                    _ => unreachable!("checked above"),
                }
            }
            HostMsg::InvAck { .. } => {
                if !matches!(
                    self.mshrs.get(addr.0).map(|m| m.tstate),
                    Some(TState::IM_AD | TState::SM_AD | TState::IM_A | TState::SM_A)
                ) {
                    let state = self.table_state(addr);
                    self.violation(state, "InvAck", addr, ctx);
                    return;
                }
                #[cfg(debug_assertions)]
                self.assert_conforms("InvAck", addr);
                let mshr = self.mshrs.get_mut(addr.0).expect("checked above");
                mshr.acks -= 1;
                if matches!(mshr.tstate, TState::IM_A | TState::SM_A) && mshr.acks <= 0 {
                    self.complete_fill(addr, StableState::M, ctx);
                }
            }
            HostMsg::FwdGetS {
                requestor, grant, ..
            } => {
                let family = self.cfg.family;
                // An upgrading O/F owner (SM_AD) can be asked to supply: the
                // line is still resident; serve it and keep upgrading.
                if matches!(
                    self.mshrs.get(addr.0).map(|m| m.tstate),
                    Some(TState::SM_AD)
                ) {
                    #[cfg(debug_assertions)]
                    self.assert_conforms("FwdGetS", addr);
                    let line = *self.array.peek(addr).expect("upgrader holds the line");
                    debug_assert!(
                        line.state.supplies_data(),
                        "FwdGetS to non-supplier upgrader"
                    );
                    let dirty = line.state.is_dirty();
                    ctx.send(
                        requestor,
                        SysMsg::Host(HostMsg::Data {
                            addr,
                            data: line.data,
                            grant,
                            acks: 0,
                            dirty,
                            poisoned: line.poisoned,
                        }),
                    );
                    let next = match family {
                        ProtocolFamily::Moesi => StableState::O,
                        _ => StableState::S,
                    };
                    if dirty && next != StableState::O {
                        self.send_dir(
                            HostMsg::DataToDir {
                                addr,
                                data: line.data,
                                dirty,
                                poisoned: line.poisoned,
                            },
                            ctx,
                        );
                    }
                    self.array.get_mut(addr).expect("present").state = next;
                    return;
                }
                if self.mshrs.get(addr.0).is_some() {
                    if !matches!(
                        self.mshrs.get(addr.0).map(|m| m.tstate),
                        Some(TState::SI_A | TState::MI_A | TState::EI_A | TState::OI_A)
                    ) {
                        let state = self.table_state(addr);
                        self.violation(state, "FwdGetS", addr, ctx);
                        return;
                    }
                    #[cfg(debug_assertions)]
                    self.assert_conforms("FwdGetS", addr);
                    let mshr = self.mshrs.get_mut(addr.0).expect("checked above");
                    match mshr.tstate {
                        TState::SI_A => {
                            // Evicting ex-forwarder (MESIF): the eviction
                            // data still serves the request.
                            let data = mshr.data;
                            ctx.send(
                                requestor,
                                SysMsg::Host(HostMsg::Data {
                                    addr,
                                    data,
                                    grant,
                                    acks: 0,
                                    dirty: false,
                                    poisoned: mshr.poisoned,
                                }),
                            );
                        }
                        TState::MI_A | TState::EI_A => {
                            let dirty = mshr.tstate == TState::MI_A;
                            let data = mshr.data;
                            let poisoned = mshr.poisoned;
                            ctx.send(
                                requestor,
                                SysMsg::Host(HostMsg::Data {
                                    addr,
                                    data,
                                    grant,
                                    acks: 0,
                                    dirty,
                                    poisoned: mshr.poisoned,
                                }),
                            );
                            if family != ProtocolFamily::Moesi {
                                mshr.tstate = TState::SI_A;
                                self.send_dir(
                                    HostMsg::DataToDir {
                                        addr,
                                        data,
                                        dirty,
                                        poisoned,
                                    },
                                    ctx,
                                );
                            }
                            // MOESI: remain dirty owner; eviction continues.
                        }
                        TState::OI_A => {
                            let data = mshr.data;
                            ctx.send(
                                requestor,
                                SysMsg::Host(HostMsg::Data {
                                    addr,
                                    data,
                                    grant,
                                    acks: 0,
                                    dirty: true,
                                    poisoned: mshr.poisoned,
                                }),
                            );
                        }
                        _ => unreachable!("checked above"),
                    }
                    return;
                }
                let Some(line) = self.array.peek(addr).copied() else {
                    self.violation("I", "FwdGetS", addr, ctx);
                    return;
                };
                if !line.state.supplies_data() {
                    self.violation(stable_name(line.state), "FwdGetS", addr, ctx);
                    return;
                }
                #[cfg(debug_assertions)]
                self.assert_conforms("FwdGetS", addr);
                let dirty = line.state.is_dirty();
                ctx.send(
                    requestor,
                    SysMsg::Host(HostMsg::Data {
                        addr,
                        data: line.data,
                        grant,
                        acks: 0,
                        dirty,
                        poisoned: line.poisoned,
                    }),
                );
                // MOESI suppliers stay owner (M/O → O, and clean E → O as
                // well: the directory cannot distinguish E from M after a
                // silent upgrade, so it keeps treating the supplier as the
                // owner; a clean O simply writes identical data back later).
                let next = match self.cfg.family {
                    ProtocolFamily::Moesi => StableState::O,
                    _ => StableState::S,
                };
                // MESI/MESIF owners make the directory's copy current.
                if dirty && next != StableState::O {
                    self.send_dir(
                        HostMsg::DataToDir {
                            addr,
                            data: line.data,
                            dirty,
                            poisoned: line.poisoned,
                        },
                        ctx,
                    );
                }
                self.array.get_mut(addr).expect("present").state = next;
            }
            HostMsg::FwdGetM {
                requestor, acks, ..
            } => {
                // An upgrading O/F owner loses its copy to a racing writer
                // (or recall): supply from the resident line, fall back to
                // IM_AD and let the own upgrade refill later.
                if matches!(
                    self.mshrs.get(addr.0).map(|m| m.tstate),
                    Some(TState::SM_AD)
                ) {
                    #[cfg(debug_assertions)]
                    self.assert_conforms("FwdGetM", addr);
                    let line = self.array.remove(addr).expect("upgrader holds the line");
                    self.hint_core(addr, ctx);
                    debug_assert!(
                        line.state.supplies_data(),
                        "FwdGetM to non-supplier upgrader"
                    );
                    ctx.send(
                        requestor,
                        SysMsg::Host(HostMsg::Data {
                            addr,
                            data: line.data,
                            grant: Grant::M,
                            acks,
                            dirty: line.state.is_dirty(),
                            poisoned: line.poisoned,
                        }),
                    );
                    self.mshrs.get_mut(addr.0).expect("present").tstate = TState::IM_AD;
                    return;
                }
                if self.mshrs.get(addr.0).is_some() {
                    if !matches!(
                        self.mshrs.get(addr.0).map(|m| m.tstate),
                        Some(TState::MI_A | TState::EI_A | TState::OI_A)
                    ) {
                        let state = self.table_state(addr);
                        self.violation(state, "FwdGetM", addr, ctx);
                        return;
                    }
                    #[cfg(debug_assertions)]
                    self.assert_conforms("FwdGetM", addr);
                    let mshr = self.mshrs.get_mut(addr.0).expect("checked above");
                    let dirty = mshr.tstate != TState::EI_A;
                    ctx.send(
                        requestor,
                        SysMsg::Host(HostMsg::Data {
                            addr,
                            data: mshr.data,
                            grant: Grant::M,
                            acks,
                            dirty,
                            poisoned: mshr.poisoned,
                        }),
                    );
                    mshr.tstate = TState::II_A;
                    return;
                }
                let Some(line) = self.array.peek(addr).copied() else {
                    self.violation("I", "FwdGetM", addr, ctx);
                    return;
                };
                if !line.state.supplies_data() {
                    self.violation(stable_name(line.state), "FwdGetM", addr, ctx);
                    return;
                }
                #[cfg(debug_assertions)]
                self.assert_conforms("FwdGetM", addr);
                self.array.remove(addr).expect("checked above");
                self.hint_core(addr, ctx);
                ctx.send(
                    requestor,
                    SysMsg::Host(HostMsg::Data {
                        addr,
                        data: line.data,
                        grant: Grant::M,
                        acks,
                        dirty: line.state.is_dirty(),
                        poisoned: line.poisoned,
                    }),
                );
            }
            HostMsg::Inv { requestor, .. } => {
                self.invalidations_received += 1;
                if self.mshrs.get(addr.0).is_some() {
                    if !matches!(
                        self.mshrs.get(addr.0).map(|m| m.tstate),
                        Some(TState::SM_AD | TState::SI_A)
                    ) {
                        let state = self.table_state(addr);
                        self.violation(state, "Inv", addr, ctx);
                        return;
                    }
                    #[cfg(debug_assertions)]
                    self.assert_conforms("Inv", addr);
                    let mshr = self.mshrs.get_mut(addr.0).expect("checked above");
                    match mshr.tstate {
                        TState::SM_AD => {
                            // Lost the shared copy mid-upgrade; the data
                            // grant will still arrive.
                            mshr.tstate = TState::IM_AD;
                            self.array.remove(addr);
                            ctx.send(requestor, SysMsg::Host(HostMsg::InvAck { addr }));
                            self.hint_core(addr, ctx);
                        }
                        TState::SI_A => {
                            mshr.tstate = TState::II_A;
                            ctx.send(requestor, SysMsg::Host(HostMsg::InvAck { addr }));
                        }
                        _ => unreachable!("checked above"),
                    }
                    return;
                }
                if !matches!(
                    self.array.peek(addr).map(|l| l.state),
                    Some(StableState::S | StableState::F)
                ) {
                    let state = self.table_state(addr);
                    self.violation(state, "Inv", addr, ctx);
                    return;
                }
                #[cfg(debug_assertions)]
                self.assert_conforms("Inv", addr);
                let line = self.array.remove(addr);
                self.hint_core(addr, ctx);
                if ctx.tracing() {
                    if let Some(l) = line {
                        ctx.trace_state(Some(addr.0), &l.state, &StableState::I);
                    }
                }
                ctx.send(requestor, SysMsg::Host(HostMsg::InvAck { addr }));
            }
            HostMsg::PutAck { .. } => {
                if !matches!(
                    self.mshrs.get(addr.0).map(|m| m.tstate),
                    Some(TState::MI_A | TState::OI_A | TState::EI_A | TState::SI_A | TState::II_A)
                ) {
                    let state = self.table_state(addr);
                    self.violation(state, "PutAck", addr, ctx);
                    return;
                }
                #[cfg(debug_assertions)]
                self.assert_conforms("PutAck", addr);
                self.retire_mshr(addr, ctx);
            }
            HostMsg::WtAck { .. } => {
                if !matches!(self.mshrs.get(addr.0).map(|m| m.tstate), Some(TState::WT_A)) {
                    let state = self.table_state(addr);
                    self.violation(state, "WtAck", addr, ctx);
                    return;
                }
                #[cfg(debug_assertions)]
                self.assert_conforms("WtAck", addr);
                let mshr = self.mshrs.get(addr.0).expect("checked above");
                let from_release = mshr.from_release;
                self.retire_mshr(addr, ctx);
                if from_release {
                    let rel = self.release.as_mut().expect("release in progress");
                    rel.remaining -= 1;
                    if rel.remaining == 0 {
                        let rel = self.release.take().expect("present");
                        let req = CoreReq {
                            tag: rel.tag,
                            instr: Instr::Work(0),
                        };
                        self.respond(&req, rel.respond_value, ctx);
                    }
                }
            }
            HostMsg::AtomicResp { old, .. } => {
                if !matches!(self.mshrs.get(addr.0).map(|m| m.tstate), Some(TState::AT_D)) {
                    let state = self.table_state(addr);
                    self.violation(state, "AtomicResp", addr, ctx);
                    return;
                }
                #[cfg(debug_assertions)]
                self.assert_conforms("AtomicResp", addr);
                let mshr = self.mshrs.take(addr.0).expect("checked above");
                let initiator = mshr.initiator.expect("atomic has initiator");
                let latency = ctx.now.since(mshr.started);
                self.stats[AccessKind::Rmw as usize].bands.record(latency);
                self.stats[AccessKind::Rmw as usize].hist.record(latency);
                ctx.trace_end(mshr.txn);
                self.respond(&initiator, old, ctx);
                for req in mshr.pending {
                    self.handle_core(req, ctx);
                }
            }
            other => {
                // Directory-bound messages (GetS, PutM, Unblock, ...) must
                // never be routed at a private cache.
                let state = self.table_state(addr);
                self.violation(state, host_event_name(&other), addr, ctx);
            }
        }
    }
}

impl Component<SysMsg> for L1Controller {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn handle(&mut self, msg: SysMsg, src: ComponentId, ctx: &mut Ctx<'_, SysMsg>) {
        c3_sim::sim_trace!("[{}] {} <- {src}: {msg:?}", ctx.now, self.name);
        match msg {
            SysMsg::CoreReq(req) => self.handle_core(req, ctx),
            SysMsg::Host(h) => self.handle_host(h, src, ctx),
            other => {
                let event = format!("{other:?}");
                self.violation("-", &event, Addr(0), ctx);
            }
        }
    }

    fn done(&self) -> bool {
        self.mshrs.is_empty() && self.release.is_none() && self.violations.is_empty()
    }

    fn inflight(&self, self_id: ComponentId, out: &mut Vec<InflightTxn>) {
        let mut entries: Vec<_> = self.mshrs.iter_live().collect();
        entries.sort_by_key(|(a, _)| *a);
        for (addr, m) in entries {
            out.push(InflightTxn {
                component: self_id,
                addr: Some(addr),
                kind: format!("mshr {:?}", m.tstate),
                since: Some(m.started),
                waiting_on: Some(self.cfg.dir),
                detail: format!(
                    "acks={}, data_received={}, {} deferred req(s)",
                    m.acks,
                    m.data_received,
                    m.pending.len()
                ),
            });
        }
        if let Some(r) = &self.release {
            out.push(InflightTxn {
                component: self_id,
                addr: None,
                kind: "release flush".into(),
                since: None,
                waiting_on: Some(self.cfg.dir),
                detail: format!("{} write-through(s) outstanding", r.remaining),
            });
        }
        for v in &self.violations {
            out.push(InflightTxn {
                component: self_id,
                addr: Some(v.addr.0),
                kind: "protocol violation".into(),
                since: None,
                waiting_on: None,
                detail: v.to_string(),
            });
        }
    }

    fn metrics(&self, out: &mut c3_sim::metrics::MetricSample) {
        let n = &self.name;
        out.gauge(n, "mshr", self.mshrs.resident() as f64);
        let hits: u64 = self.stats.iter().map(|s| s.hits).sum();
        let misses: u64 = self.stats.iter().map(|s| s.misses).sum();
        out.counter(n, "hits", hits as f64);
        out.counter(n, "misses", misses as f64);
        out.counter(n, "writebacks", self.writebacks as f64);
        out.counter(n, "invalidations", self.invalidations_received as f64);
        // Opt-in footprint gauges; the flag is fixed for the life of a
        // run, so the telemetry schema stays stable across samples.
        if self.state_metrics {
            let f = self.mshrs.footprint();
            out.gauge(n, "resident_mshrs", f.resident as f64);
            out.gauge(n, "resident_regions", f.regions as f64);
            out.gauge(n, "state_bytes", f.state_bytes as f64);
        }
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        for (kind, label) in [
            (AccessKind::Load, "load"),
            (AccessKind::Store, "store"),
            (AccessKind::Rmw, "rmw"),
        ] {
            let s = &self.stats[kind as usize];
            out.set(format!("{n}.{label}.hits"), s.hits as f64);
            out.set(format!("{n}.{label}.misses"), s.misses as f64);
            s.hist.report_into(out, &format!("{n}.{label}.lat"));
            for band in c3_sim::stats::Band::ALL {
                out.set(
                    format!("{n}.{label}.miss_ns.{band}"),
                    s.bands.total_ns(band) as f64,
                );
                out.set(
                    format!("{n}.{label}.miss_count.{band}"),
                    s.bands.count(band) as f64,
                );
            }
        }
        out.set(format!("{n}.writebacks"), self.writebacks as f64);
        out.set(
            format!("{n}.invalidations"),
            self.invalidations_received as f64,
        );
        out.set(
            format!("{n}.self_invalidations"),
            self.self_invalidations as f64,
        );
        // Only present when poison actually reached a consumer, so
        // fault-free runs keep byte-identical reports.
        if self.poisoned_reads > 0 {
            out.set(format!("{n}.poisoned_reads"), self.poisoned_reads as f64);
        }
        // Same gating: only present when something actually went wrong.
        if !self.violations.is_empty() {
            out.set(
                format!("{n}.protocol_violations"),
                self.violations.len() as f64,
            );
        }
        // Footprint lines exist only when opted in, keeping default-wired
        // reports byte-identical.
        if self.state_metrics {
            let f = self.mshrs.footprint();
            out.set(format!("{n}.peak_resident_mshrs"), f.peak_resident as f64);
            out.set(format!("{n}.peak_state_bytes"), f.peak_state_bytes as f64);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The `HostMsg` variant name, as used for table events and violations.
fn host_event_name(msg: &HostMsg) -> &'static str {
    match msg {
        HostMsg::GetS { .. } => "GetS",
        HostMsg::GetM { .. } => "GetM",
        HostMsg::PutS { .. } => "PutS",
        HostMsg::PutE { .. } => "PutE",
        HostMsg::PutM { .. } => "PutM",
        HostMsg::PutO { .. } => "PutO",
        HostMsg::WriteThrough { .. } => "WriteThrough",
        HostMsg::AtomicRmw { .. } => "AtomicRmw",
        HostMsg::FwdGetS { .. } => "FwdGetS",
        HostMsg::FwdGetM { .. } => "FwdGetM",
        HostMsg::Inv { .. } => "Inv",
        HostMsg::PutAck { .. } => "PutAck",
        HostMsg::WtAck { .. } => "WtAck",
        HostMsg::AtomicResp { .. } => "AtomicResp",
        HostMsg::Data { .. } => "Data",
        HostMsg::DataToDir { .. } => "DataToDir",
        HostMsg::InvAck { .. } => "InvAck",
        HostMsg::Unblock { .. } => "Unblock",
    }
}

/// Per-family cache of [`l1_transition_table`] for the debug-mode
/// conformance asserts (building the table on every message would be
/// unaffordable even in debug runs).
#[cfg(debug_assertions)]
fn l1_cached_table(family: ProtocolFamily) -> &'static TransitionTable {
    use std::sync::OnceLock;
    static MESI: OnceLock<TransitionTable> = OnceLock::new();
    static MESIF: OnceLock<TransitionTable> = OnceLock::new();
    static MOESI: OnceLock<TransitionTable> = OnceLock::new();
    static RCC: OnceLock<TransitionTable> = OnceLock::new();
    static CXL: OnceLock<TransitionTable> = OnceLock::new();
    let slot = match family {
        ProtocolFamily::Mesi => &MESI,
        ProtocolFamily::Mesif => &MESIF,
        ProtocolFamily::Moesi => &MOESI,
        ProtocolFamily::Rcc => &RCC,
        ProtocolFamily::CxlMem => &CXL,
    };
    slot.get_or_init(|| l1_transition_table(family))
}

/// The declarative transition relation of the [`L1Controller`] for
/// `family`, mirrored row-by-row from the dynamic dispatch in
/// `handle_core` / `handle_host` / `ensure_way`.
///
/// Row states are MSHR transient-state names while a transaction is in
/// flight, else the resident stable state (`I` when absent). Debug builds
/// assert every dynamic handler step against this table;
/// `c3-verif::static_checks` and the `protocheck` binary check the table
/// itself offline.
pub fn l1_transition_table(family: ProtocolFamily) -> TransitionTable {
    if family == ProtocolFamily::Rcc {
        rcc_l1_table()
    } else {
        swmr_l1_table(family)
    }
}

/// SWMR (MESI / MESIF / MOESI) L1 table.
fn swmr_l1_table(family: ProtocolFamily) -> TransitionTable {
    type R = TransitionRow;
    let moesi = family == ProtocolFamily::Moesi;
    let mesif = family == ProtocolFamily::Mesif;
    let to_dir = |m: &'static str| Action::send(m, Vnet::Req, "bridge");
    let resp = Action::complete("CoreResp", Vnet::Resp, "core");
    let unblock = Action::send("Unblock", Vnet::Resp, "bridge");
    let data_l1 = Action::send("Data", Vnet::Resp, "l1");
    let data_dir = Action::send("DataToDir", Vnet::Resp, "bridge");
    let inv_ack = Action::send("InvAck", Vnet::Resp, "l1");

    let mut stables = vec!["I", "S", "E"];
    if mesif {
        stables.push("F");
    }
    if moesi {
        stables.push("O");
    }
    stables.push("M");
    let mut transients = vec![
        "IS_D", "IM_AD", "IM_A", "SM_AD", "SM_A", "MI_A", "EI_A", "SI_A", "II_A",
    ];
    if moesi {
        transients.push("OI_A");
    }
    // Stable states the directory may forward a request to.
    let mut suppliers = vec!["E"];
    if mesif {
        suppliers.push("F");
    }
    if moesi {
        suppliers.push("O");
    }
    suppliers.push("M");
    // Readable-but-not-writable states a store upgrades from.
    let mut upgrade = vec!["S"];
    if mesif {
        upgrade.push("F");
    }
    if moesi {
        upgrade.push("O");
    }
    // What each transient state's MSHR retires on (stall wake-up set).
    let waits = |t: &str| -> Vec<&'static str> {
        match t {
            "IS_D" => vec!["Data"],
            "IM_AD" | "SM_AD" => vec!["Data", "InvAck"],
            "IM_A" | "SM_A" => vec!["InvAck"],
            _ => vec!["PutAck"],
        }
    };

    let mut rows = vec![
        R::next(
            "I",
            "Load",
            "IS_D",
            vec![to_dir("GetS")],
            "l1.rs:handle_core/Load-miss",
        ),
        R::next(
            "I",
            "Store",
            "IM_AD",
            vec![to_dir("GetM")],
            "l1.rs:handle_core/Store-miss",
        ),
        R::next(
            "I",
            "Rmw",
            "IM_AD",
            vec![to_dir("GetM")],
            "l1.rs:handle_core/Rmw-miss",
        ),
        R::forbidden("I", "Repl", "I lines are not resident", "l1.rs:ensure_way"),
    ];
    for s in stables.iter().filter(|s| **s != "I") {
        rows.push(R::next(
            s,
            "Load",
            s,
            vec![resp.clone()],
            "l1.rs:handle_core/Load-hit",
        ));
    }
    for s in &upgrade {
        rows.push(R::next(
            s,
            "Store",
            "SM_AD",
            vec![to_dir("GetM")],
            "l1.rs:handle_core/Store-upgrade",
        ));
        rows.push(R::next(
            s,
            "Rmw",
            "SM_AD",
            vec![to_dir("GetM")],
            "l1.rs:handle_core/Rmw-upgrade",
        ));
    }
    for s in ["E", "M"] {
        rows.push(R::next(
            s,
            "Store",
            "M",
            vec![resp.clone()],
            "l1.rs:handle_core/Store-hit",
        ));
        rows.push(R::next(
            s,
            "Rmw",
            "M",
            vec![resp.clone()],
            "l1.rs:handle_core/Rmw-hit",
        ));
    }
    rows.push(R::next(
        "S",
        "Repl",
        "SI_A",
        vec![to_dir("PutS")],
        "l1.rs:ensure_way/S",
    ));
    if mesif {
        rows.push(R::next(
            "F",
            "Repl",
            "SI_A",
            vec![to_dir("PutS")],
            "l1.rs:ensure_way/F",
        ));
    }
    rows.push(R::next(
        "E",
        "Repl",
        "EI_A",
        vec![to_dir("PutE")],
        "l1.rs:ensure_way/E",
    ));
    rows.push(R::next(
        "M",
        "Repl",
        "MI_A",
        vec![to_dir("PutM")],
        "l1.rs:ensure_way/M",
    ));
    if moesi {
        rows.push(R::next(
            "O",
            "Repl",
            "OI_A",
            vec![to_dir("PutO")],
            "l1.rs:ensure_way/O",
        ));
    }
    // A line with a transaction in flight defers further core traffic
    // (MSHR `pending` queue) and is skipped by victim selection.
    for t in &transients {
        for e in ["Load", "Store", "Rmw", "Repl"] {
            rows.push(R::stall(t, e, waits(t), "l1.rs:handle_core/defer"));
        }
    }

    // Data grants (the directory answers GetS with S, E or — MESIF — F;
    // GetM is always granted M).
    let mut grants = vec!["S", "E"];
    if mesif {
        grants.push("F");
    }
    for g in grants {
        rows.push(R::next(
            "IS_D",
            "Data",
            g,
            vec![resp.clone(), unblock.clone()],
            "l1.rs:handle_host/Data@IS_D",
        ));
    }
    for (t, awaiting) in [("IM_AD", "IM_A"), ("SM_AD", "SM_A")] {
        rows.push(R::next(
            t,
            "Data",
            "M",
            vec![resp.clone(), unblock.clone()],
            "l1.rs:handle_host/Data-acks-settled",
        ));
        rows.push(R::next(
            t,
            "Data",
            awaiting,
            vec![],
            "l1.rs:handle_host/Data-awaiting-acks",
        ));
    }
    rows.push(R::forbidden(
        ANY_STATE,
        "Data",
        "Data without a matching MSHR",
        "l1.rs:handle_host/Data",
    ));
    for t in ["IM_AD", "SM_AD"] {
        rows.push(R::next(
            t,
            "InvAck",
            t,
            vec![],
            "l1.rs:handle_host/InvAck-early",
        ));
    }
    for t in ["IM_A", "SM_A"] {
        rows.push(R::next(t, "InvAck", t, vec![], "l1.rs:handle_host/InvAck"));
        rows.push(R::next(
            t,
            "InvAck",
            "M",
            vec![resp.clone(), unblock.clone()],
            "l1.rs:handle_host/InvAck-last",
        ));
    }
    rows.push(R::forbidden(
        ANY_STATE,
        "InvAck",
        "InvAck without a matching MSHR",
        "l1.rs:handle_host/InvAck",
    ));

    // FwdGetS: supply data; MESI/MESIF dirty suppliers also refresh the
    // directory copy (DataToDir); MOESI suppliers stay/become owner.
    rows.push(R::next(
        "SM_AD",
        "FwdGetS",
        "SM_AD",
        vec![data_l1.clone()],
        "l1.rs:handle_host/FwdGetS@SM_AD",
    ));
    rows.push(R::next(
        "SI_A",
        "FwdGetS",
        "SI_A",
        vec![data_l1.clone()],
        "l1.rs:handle_host/FwdGetS@SI_A",
    ));
    for t in ["MI_A", "EI_A"] {
        if moesi {
            rows.push(R::next(
                t,
                "FwdGetS",
                t,
                vec![data_l1.clone()],
                "l1.rs:handle_host/FwdGetS@evict(moesi)",
            ));
        } else {
            rows.push(R::next(
                t,
                "FwdGetS",
                "SI_A",
                vec![data_l1.clone(), data_dir.clone()],
                "l1.rs:handle_host/FwdGetS@evict",
            ));
        }
    }
    if moesi {
        rows.push(R::next(
            "OI_A",
            "FwdGetS",
            "OI_A",
            vec![data_l1.clone()],
            "l1.rs:handle_host/FwdGetS@OI_A",
        ));
    }
    let fwd_next = if moesi { "O" } else { "S" };
    for s in &suppliers {
        let mut acts = vec![data_l1.clone()];
        if *s == "M" && !moesi {
            acts.push(data_dir.clone());
        }
        rows.push(R::next(
            s,
            "FwdGetS",
            fwd_next,
            acts,
            "l1.rs:handle_host/FwdGetS@stable",
        ));
    }
    rows.push(R::forbidden(
        ANY_STATE,
        "FwdGetS",
        "forward to a non-supplier or absent line",
        "l1.rs:handle_host/FwdGetS",
    ));

    rows.push(R::next(
        "SM_AD",
        "FwdGetM",
        "IM_AD",
        vec![data_l1.clone()],
        "l1.rs:handle_host/FwdGetM@SM_AD",
    ));
    for t in ["MI_A", "EI_A"] {
        rows.push(R::next(
            t,
            "FwdGetM",
            "II_A",
            vec![data_l1.clone()],
            "l1.rs:handle_host/FwdGetM@evict",
        ));
    }
    if moesi {
        rows.push(R::next(
            "OI_A",
            "FwdGetM",
            "II_A",
            vec![data_l1.clone()],
            "l1.rs:handle_host/FwdGetM@OI_A",
        ));
    }
    for s in &suppliers {
        rows.push(R::next(
            s,
            "FwdGetM",
            "I",
            vec![data_l1.clone()],
            "l1.rs:handle_host/FwdGetM@stable",
        ));
    }
    rows.push(R::forbidden(
        ANY_STATE,
        "FwdGetM",
        "forward to a non-supplier or absent line",
        "l1.rs:handle_host/FwdGetM",
    ));

    rows.push(R::next(
        "SM_AD",
        "Inv",
        "IM_AD",
        vec![inv_ack.clone()],
        "l1.rs:handle_host/Inv@SM_AD",
    ));
    rows.push(R::next(
        "SI_A",
        "Inv",
        "II_A",
        vec![inv_ack.clone()],
        "l1.rs:handle_host/Inv@SI_A",
    ));
    rows.push(R::next(
        "S",
        "Inv",
        "I",
        vec![inv_ack.clone()],
        "l1.rs:handle_host/Inv@S",
    ));
    if mesif {
        rows.push(R::next(
            "F",
            "Inv",
            "I",
            vec![inv_ack.clone()],
            "l1.rs:handle_host/Inv@F",
        ));
    }
    rows.push(R::forbidden(
        ANY_STATE,
        "Inv",
        "Inv for a non-shared line",
        "l1.rs:handle_host/Inv",
    ));

    let mut evicting = vec!["MI_A", "EI_A", "SI_A", "II_A"];
    if moesi {
        evicting.push("OI_A");
    }
    for t in &evicting {
        rows.push(R::next(
            t,
            "PutAck",
            "I",
            vec![],
            "l1.rs:handle_host/PutAck",
        ));
    }
    rows.push(R::forbidden(
        ANY_STATE,
        "PutAck",
        "PutAck without an eviction MSHR",
        "l1.rs:handle_host/PutAck",
    ));

    // Region-summary quiescence (PR-9): a line may shed its resident
    // MSHR record only in a stable state, and doing so must not change
    // protocol state or emit messages. Transient states hold an MSHR.
    for s in &stables {
        rows.push(R::next(
            s,
            "Quiesce",
            s,
            vec![],
            "l1.rs:retire (MSHR closed; line quiescent)",
        ));
    }
    for t in &transients {
        rows.push(R::forbidden(
            t,
            "Quiesce",
            "an in-flight transaction holds a resident MSHR",
            "l1.rs:retire",
        ));
    }

    let mut states = stables.clone();
    states.extend(transients.iter().copied());
    TransitionTable {
        controller: "l1",
        states,
        events: vec![
            "Load", "Store", "Rmw", "Repl", "Data", "InvAck", "FwdGetS", "FwdGetM", "Inv",
            "PutAck", "Quiesce",
        ],
        event_vnets: vec![
            ("Data", Vnet::Resp),
            ("InvAck", Vnet::Resp),
            ("PutAck", Vnet::Resp),
            ("FwdGetS", Vnet::Snoop),
            ("FwdGetM", Vnet::Snoop),
            ("Inv", Vnet::Snoop),
        ],
        initial: vec!["I"],
        forbidden: vec![],
        // Core traffic and evictions originate outside the message system;
        // the directory engine (not table-modelled — it is exhaustively
        // unit-tested and has no blocking states) produces the rest.
        assumed_available: vec![
            "Load", "Store", "Rmw", "Repl", "Data", "InvAck", "FwdGetS", "FwdGetM", "Inv",
            "PutAck", "Quiesce",
        ],
        rows,
    }
}

/// RCC (release-consistency, self-invalidation) L1 table.
fn rcc_l1_table() -> TransitionTable {
    type R = TransitionRow;
    let to_dir = |m: &'static str| Action::send(m, Vnet::Req, "bridge");
    let resp = Action::complete("CoreResp", Vnet::Resp, "core");
    let mut rows = vec![
        R::next(
            "I",
            "Load",
            "IS_D",
            vec![to_dir("GetS")],
            "l1.rs:handle_core/Load-miss",
        ),
        R::next(
            "S",
            "Load",
            "S",
            vec![resp.clone()],
            "l1.rs:handle_core/Load-hit",
        ),
        R::next(
            "M",
            "Load",
            "M",
            vec![resp.clone()],
            "l1.rs:handle_core/Load-hit",
        ),
        R::next("S", "Repl", "I", vec![], "l1.rs:ensure_way/S-silent-drop"),
        R::next(
            "M",
            "Repl",
            "WT_A",
            vec![to_dir("WriteThrough")],
            "l1.rs:ensure_way/M",
        ),
        R::forbidden("I", "Repl", "I lines are not resident", "l1.rs:ensure_way"),
    ];
    for s in ["I", "S", "M"] {
        // RCC stores complete locally without ownership; atomics execute
        // at the shared level.
        rows.push(R::next(
            s,
            "Store",
            "M",
            vec![resp.clone()],
            "l1.rs:handle_core/Store-local",
        ));
        rows.push(R::next(
            s,
            "Rmw",
            "AT_D",
            vec![to_dir("AtomicRmw")],
            "l1.rs:handle_core/Rmw-remote",
        ));
    }
    for (t, w) in [("IS_D", "Data"), ("WT_A", "WtAck"), ("AT_D", "AtomicResp")] {
        for e in ["Load", "Store", "Rmw", "Repl"] {
            rows.push(R::stall(t, e, vec![w], "l1.rs:handle_core/defer"));
        }
    }
    rows.push(R::next(
        "IS_D",
        "Data",
        "S",
        vec![resp.clone()],
        "l1.rs:handle_host/Data@IS_D",
    ));
    // An eviction write-through retires to I; a release-flush one retains
    // the clean copy.
    rows.push(R::next(
        "WT_A",
        "WtAck",
        "I",
        vec![],
        "l1.rs:handle_host/WtAck",
    ));
    rows.push(R::next(
        "WT_A",
        "WtAck",
        "S",
        vec![],
        "l1.rs:handle_host/WtAck-release-retain",
    ));
    rows.push(R::next(
        "AT_D",
        "AtomicResp",
        "I",
        vec![resp.clone()],
        "l1.rs:handle_host/AtomicResp",
    ));
    for e in ["Data", "WtAck", "AtomicResp"] {
        rows.push(R::forbidden(
            ANY_STATE,
            e,
            "response without a matching MSHR",
            "l1.rs:handle_host",
        ));
    }
    // Region-summary quiescence (PR-9), mirroring the SWMR table.
    for s in ["I", "S", "M"] {
        rows.push(R::next(
            s,
            "Quiesce",
            s,
            vec![],
            "l1.rs:retire (MSHR closed; line quiescent)",
        ));
    }
    for t in ["IS_D", "WT_A", "AT_D"] {
        rows.push(R::forbidden(
            t,
            "Quiesce",
            "an in-flight transaction holds a resident MSHR",
            "l1.rs:retire",
        ));
    }
    TransitionTable {
        controller: "l1",
        states: vec!["I", "S", "M", "IS_D", "WT_A", "AT_D"],
        events: vec![
            "Load",
            "Store",
            "Rmw",
            "Repl",
            "Data",
            "WtAck",
            "AtomicResp",
            "Quiesce",
        ],
        event_vnets: vec![
            ("Data", Vnet::Resp),
            ("WtAck", Vnet::Resp),
            ("AtomicResp", Vnet::Resp),
        ],
        initial: vec!["I"],
        forbidden: vec![],
        assumed_available: vec![
            "Load",
            "Store",
            "Rmw",
            "Repl",
            "Data",
            "WtAck",
            "AtomicResp",
            "Quiesce",
        ],
        rows,
    }
}
