//! # c3-memsys — host memory system components
//!
//! The cluster-level memory system of the C³ reproduction (*C³: CXL
//! Coherence Controllers for Heterogeneous Architectures*, HPCA 2026):
//!
//! * [`cache`] — set-associative LRU cache arrays (L1s, C³'s CXL cache);
//! * [`l1`] — private cache controllers with explicit transient states,
//!   configurable as MESI / MESIF / MOESI / RCC;
//! * [`direngine`] — the host-domain directory engine: the "local directory
//!   controller" half of C³ (Fig. 5), with the Rule-I backend-delegation
//!   and Rule-II recall/nesting hooks;
//! * [`global_dir`] — the baseline hierarchical MESI top-level directory;
//! * [`seqcore`] — a sequentially consistent reference core for tests.

#![warn(missing_docs)]

pub mod cache;
pub mod direngine;
pub mod global_dir;
pub mod l1;
pub mod seqcore;

pub use cache::CacheArray;
pub use direngine::{BackendPerms, DirEffect, DirEngine, Holders, RecallKind};
pub use global_dir::GlobalMesiDir;
pub use l1::{AccessKind, L1Config, L1Controller};
pub use seqcore::SeqCore;
