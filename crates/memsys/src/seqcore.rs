//! A simple in-order, one-outstanding-access core.
//!
//! `SeqCore` executes its program strictly sequentially (each access waits
//! for the previous one to complete), which makes it a *sequentially
//! consistent* reference processor. The OoO/TSO/weak timing cores live in
//! `c3-mcm`; this one is used by unit/integration tests and as the SC
//! baseline configuration.

use std::any::Any;

use c3_protocol::msg::{CoreReq, CoreResp, SysMsg};
use c3_protocol::ops::{Instr, Reg, ThreadProgram};
use c3_sim::component::{Component, ComponentId, Ctx};
use c3_sim::stats::Report;
use c3_sim::time::{Delay, Time};

/// Sequential core component: issues one instruction at a time.
#[derive(Debug)]
pub struct SeqCore {
    name: String,
    l1: ComponentId,
    program: ThreadProgram,
    pc: usize,
    regs: [u64; 32],
    issue_latency: Delay,
    waiting_tag: Option<u64>,
    finished_at: Option<Time>,
    instructions_retired: u64,
}

impl SeqCore {
    /// Create a core executing `program` against cache `l1`.
    pub fn new(name: impl Into<String>, l1: ComponentId, program: ThreadProgram) -> Self {
        SeqCore {
            name: name.into(),
            l1,
            program,
            pc: 0,
            regs: [0; 32],
            issue_latency: Delay::from_cycles(1, 2_000),
            waiting_tag: None,
            finished_at: None,
            instructions_retired: 0,
        }
    }

    /// Value of register `reg` (litmus outcome observation).
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.0 as usize]
    }

    /// Time at which the program finished, if it has.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, SysMsg>) {
        let Some(instr) = self.program.instrs.get(self.pc).copied() else {
            if self.finished_at.is_none() {
                self.finished_at = Some(ctx.now);
            }
            return;
        };
        match instr {
            Instr::Work(cycles) => {
                // Local compute: wake up after the delay, no L1 traffic.
                self.pc += 1;
                self.instructions_retired += 1;
                ctx.wake_after(Delay::from_cycles(cycles as u64, 2_000), 0);
            }
            _ => {
                let tag = self.pc as u64;
                self.waiting_tag = Some(tag);
                ctx.send_direct(
                    self.l1,
                    SysMsg::CoreReq(CoreReq { tag, instr }),
                    self.issue_latency,
                );
            }
        }
    }
}

impl Component<SysMsg> for SeqCore {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn start(&mut self, ctx: &mut Ctx<'_, SysMsg>) {
        self.issue_next(ctx);
    }

    fn on_wake(&mut self, _token: u64, ctx: &mut Ctx<'_, SysMsg>) {
        self.issue_next(ctx);
    }

    fn handle(&mut self, msg: SysMsg, _src: ComponentId, ctx: &mut Ctx<'_, SysMsg>) {
        if matches!(msg, SysMsg::InvHint { .. }) {
            return; // sequential cores never speculate
        }
        let SysMsg::CoreResp(CoreResp { tag, value }) = msg else {
            panic!("core received {msg:?}");
        };
        assert_eq!(Some(tag), self.waiting_tag, "response for wrong access");
        self.waiting_tag = None;
        let instr = self.program.instrs[self.pc];
        match instr {
            Instr::Load { reg, .. } | Instr::Rmw { reg, .. } => {
                self.regs[reg.0 as usize] = value;
            }
            _ => {}
        }
        self.pc += 1;
        self.instructions_retired += 1;
        self.issue_next(ctx);
    }

    fn done(&self) -> bool {
        self.pc >= self.program.len() && self.waiting_tag.is_none()
    }

    fn report(&self, out: &mut Report) {
        out.set(
            format!("{}.retired", self.name),
            self.instructions_retired as f64,
        );
        if let Some(t) = self.finished_at {
            out.set(format!("{}.finished_ns", self.name), t.as_ns() as f64);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
