//! Deterministic tests of the L1 controller's *transient* states.
//!
//! The integration suites hit these races probabilistically; here a
//! scripted driver plays both the core and the directory with exact
//! timing, pinning down each row of the transient table:
//! `SM_AD + Inv`, `SM_AD + FwdGetM`, `MI_A + FwdGetM`, `MI_A + FwdGetS`,
//! ack-before-data arrivals, and the RCC flush protocol.

use std::any::Any;

use c3_memsys::l1::{L1Config, L1Controller};
use c3_protocol::msg::{CoreReq, Grant, HostMsg, SysMsg};
use c3_protocol::ops::{AccessOrder, Addr, Instr, Reg};
use c3_protocol::states::{ProtocolFamily, StableState};
use c3_sim::component::{Component, ComponentId, Ctx};
use c3_sim::prelude::*;

/// Scripted sends (at absolute times) plus a log of everything received.
struct Driver {
    script: Vec<(Time, ComponentId, SysMsg)>,
    next: usize,
    log: Vec<(Time, SysMsg)>,
}

impl Driver {
    fn new(script: Vec<(Time, ComponentId, SysMsg)>) -> Self {
        Driver {
            script,
            next: 0,
            log: Vec::new(),
        }
    }
}

impl Component<SysMsg> for Driver {
    fn name(&self) -> String {
        "driver".into()
    }
    fn start(&mut self, ctx: &mut Ctx<'_, SysMsg>) {
        for (i, (at, _, _)) in self.script.iter().enumerate() {
            ctx.wake_after(at.since(Time::ZERO), i as u64);
        }
    }
    fn on_wake(&mut self, token: u64, ctx: &mut Ctx<'_, SysMsg>) {
        let (_, dst, msg) = self.script[token as usize];
        ctx.send_direct(dst, msg, Delay::from_ps(1));
        self.next += 1;
    }
    fn handle(&mut self, msg: SysMsg, _src: ComponentId, ctx: &mut Ctx<'_, SysMsg>) {
        self.log.push((ctx.now, msg));
    }
    fn done(&self) -> bool {
        self.next >= self.script.len()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn store(addr: Addr, val: u64) -> Instr {
    Instr::Store {
        addr,
        val,
        order: AccessOrder::Relaxed,
    }
}

fn load(addr: Addr, reg: Reg) -> Instr {
    Instr::Load {
        addr,
        reg,
        order: AccessOrder::Relaxed,
    }
}

/// Build (simulator, l1, driver): the driver is both core and directory.
fn harness(
    family: ProtocolFamily,
    script: Vec<(Time, ComponentId, SysMsg)>,
) -> (Simulator<SysMsg>, ComponentId, ComponentId) {
    let mut sim: Simulator<SysMsg> = Simulator::new(1);
    let l1_id = ComponentId(0);
    let driver_id = ComponentId(1);
    let got = sim.add_component(Box::new(L1Controller::new(
        "l1",
        L1Config {
            family,
            sets: 4,
            ways: 2,
            hit_latency: Delay::from_cycles(1, 2_000),
            core: driver_id,
            dir: driver_id,
        },
    )));
    assert_eq!(got, l1_id);
    let got = sim.add_component(Box::new(Driver::new(script)));
    assert_eq!(got, driver_id);
    sim.fabric_mut()
        .wire_p2p(&[l1_id, driver_id], &LinkConfig::intra_cluster());
    (sim, l1_id, driver_id)
}

fn host_msgs(log: &[(Time, SysMsg)]) -> Vec<HostMsg> {
    log.iter()
        .filter_map(|(_, m)| match m {
            SysMsg::Host(h) => Some(*h),
            _ => None,
        })
        .collect()
}

const X: Addr = Addr(0x11);
const L1: ComponentId = ComponentId(0);

#[test]
fn sm_ad_plus_inv_downgrades_to_im_ad() {
    // The L1 upgrades from S; an Inv (another writer won) arrives before
    // the data: the L1 must ack, drop its S copy, and still complete the
    // store when Data+ack arrive.
    let script = vec![
        // Seed the line in S: GetS + Data{S}.
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: load(X, Reg(0)),
            }),
        ),
        (
            Time::from_ns(20),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 7,
                grant: Grant::S,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
        // Upgrade store -> SM_AD.
        (
            Time::from_ns(40),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 2,
                instr: store(X, 8),
            }),
        ),
        // Inv wins the race (requestor = driver).
        (
            Time::from_ns(60),
            L1,
            SysMsg::Host(HostMsg::Inv {
                addr: X,
                requestor: ComponentId(1),
            }),
        ),
        // The upgrade is eventually granted.
        (
            Time::from_ns(90),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 9,
                grant: Grant::M,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Mesi, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    // The L1 acked the invalidation...
    assert!(msgs.iter().any(|m| matches!(m, HostMsg::InvAck { .. })));
    // ...and completed the store with the *fresh* data (9 overwritten by 8).
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(l1c.line(X), Some((StableState::M, 8)));
    // Unblock(M) was sent after completion.
    assert!(msgs.iter().any(|m| matches!(
        m,
        HostMsg::Unblock {
            to_state: StableState::M,
            ..
        }
    )));
}

#[test]
fn acks_may_arrive_before_data() {
    // IM_AD with the InvAck landing before Data{acks: 1}: the negative
    // balance must resolve and the store complete exactly once.
    let script = vec![
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: store(X, 5),
            }),
        ),
        // InvAck arrives first (from the invalidated sharer).
        (
            Time::from_ns(30),
            L1,
            SysMsg::Host(HostMsg::InvAck { addr: X }),
        ),
        // Data arrives later, expecting 1 ack.
        (
            Time::from_ns(50),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 0,
                grant: Grant::M,
                acks: 1,
                dirty: false,
                poisoned: false,
            }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Mesi, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(l1c.line(X), Some((StableState::M, 5)));
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    assert_eq!(
        msgs.iter()
            .filter(|m| matches!(m, HostMsg::Unblock { .. }))
            .count(),
        1,
        "exactly one unblock"
    );
}

#[test]
fn fwd_getm_on_dirty_owner_supplies_and_invalidates() {
    // A Fwd-GetM reaches a dirty owner: the L1 must supply its dirty data
    // to the new owner and invalidate its own copy.
    let script = vec![
        // Install M via store (miss -> IM_AD -> Data{M}).
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: store(X, 42),
            }),
        ),
        (
            Time::from_ns(20),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 0,
                grant: Grant::M,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
        (
            Time::from_ns(40),
            L1,
            SysMsg::Host(HostMsg::FwdGetM {
                addr: X,
                requestor: ComponentId(1),
                acks: 0,
            }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Mesi, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    // The L1 supplied dirty data with an M grant.
    assert!(msgs.iter().any(|m| matches!(
        m,
        HostMsg::Data {
            data: 42,
            grant: Grant::M,
            dirty: true,
            poisoned: false,
            ..
        }
    )));
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(l1c.line_state(X), StableState::I);
}

#[test]
fn rcc_release_writes_through_all_dirty_lines() {
    let y = Addr(0x12);
    let script = vec![
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: store(X, 1),
            }),
        ),
        (
            Time::from_ns(2),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 2,
                instr: store(y, 2),
            }),
        ),
        // A release-annotated store triggers the flush.
        (
            Time::from_ns(10),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 3,
                instr: Instr::Store {
                    addr: Addr(0x13),
                    val: 3,
                    order: AccessOrder::Release,
                },
            }),
        ),
        // Acks for all three write-throughs.
        (
            Time::from_ns(40),
            L1,
            SysMsg::Host(HostMsg::WtAck { addr: X }),
        ),
        (
            Time::from_ns(42),
            L1,
            SysMsg::Host(HostMsg::WtAck { addr: y }),
        ),
        (
            Time::from_ns(44),
            L1,
            SysMsg::Host(HostMsg::WtAck { addr: Addr(0x13) }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Rcc, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    let wts: Vec<_> = msgs
        .iter()
        .filter_map(|m| match m {
            HostMsg::WriteThrough { addr, data } => Some((*addr, *data)),
            _ => None,
        })
        .collect();
    assert!(wts.contains(&(X, 1)), "{wts:?}");
    assert!(wts.contains(&(y, 2)), "{wts:?}");
    assert!(wts.contains(&(Addr(0x13), 3)), "{wts:?}");
    // After release, the lines are retained clean (S).
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(l1c.line_state(X), StableState::S);
    // The core got exactly 3 responses (2 stores + the release).
    let resps = sim
        .component_as::<Driver>(driver)
        .unwrap()
        .log
        .iter()
        .filter(|(_, m)| matches!(m, SysMsg::CoreResp(_)))
        .count();
    assert_eq!(resps, 3);
}

#[test]
fn rcc_acquire_drops_clean_lines_only() {
    let y = Addr(0x12);
    let script = vec![
        // Clean S copy of X (load + grant), dirty copy of Y (local store).
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: load(X, Reg(0)),
            }),
        ),
        (
            Time::from_ns(20),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 1,
                grant: Grant::S,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
        (
            Time::from_ns(30),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 2,
                instr: store(y, 9),
            }),
        ),
        // Acquire-annotated load of a third line.
        (
            Time::from_ns(40),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 3,
                instr: Instr::Load {
                    addr: Addr(0x13),
                    reg: Reg(1),
                    order: AccessOrder::Acquire,
                },
            }),
        ),
        (
            Time::from_ns(60),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: Addr(0x13),
                data: 3,
                grant: Grant::S,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
    ];
    let (mut sim, l1, _) = harness(ProtocolFamily::Rcc, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    // The clean copy self-invalidated at the acquire; the dirty one stayed.
    assert_eq!(l1c.line_state(X), StableState::I);
    assert_eq!(l1c.line(y), Some((StableState::M, 9)));
}

#[test]
fn fwd_gets_on_moesi_owner_keeps_ownership() {
    let script = vec![
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: store(X, 77),
            }),
        ),
        (
            Time::from_ns(20),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 0,
                grant: Grant::M,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
        (
            Time::from_ns(40),
            L1,
            SysMsg::Host(HostMsg::FwdGetS {
                addr: X,
                requestor: ComponentId(1),
                grant: Grant::S,
            }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Moesi, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(
        l1c.line(X),
        Some((StableState::O, 77)),
        "MOESI owner keeps O"
    );
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    // Data supplied to the requestor, but NO DataToDir (MOESI keeps dirty).
    assert!(msgs
        .iter()
        .any(|m| matches!(m, HostMsg::Data { data: 77, .. })));
    assert!(!msgs.iter().any(|m| matches!(m, HostMsg::DataToDir { .. })));
}

#[test]
fn fwd_gets_on_mesi_owner_writes_back() {
    let script = vec![
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: store(X, 77),
            }),
        ),
        (
            Time::from_ns(20),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 0,
                grant: Grant::M,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
        (
            Time::from_ns(40),
            L1,
            SysMsg::Host(HostMsg::FwdGetS {
                addr: X,
                requestor: ComponentId(1),
                grant: Grant::S,
            }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Mesi, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(
        l1c.line(X),
        Some((StableState::S, 77)),
        "MESI owner demotes to S"
    );
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    assert!(msgs.iter().any(|m| matches!(
        m,
        HostMsg::DataToDir {
            data: 77,
            dirty: true,
            ..
        }
    )));
}

#[test]
fn si_a_plus_inv_still_completes_eviction() {
    // A clean shared line is being evicted (PutS in flight) when an Inv
    // crosses it: the L1 must ack the Inv (the requester is counting) and
    // still consume the PutAck (II_A).
    let y = Addr(0x15); // same set pressure not needed; drive directly
    let script = vec![
        // Install S.
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: load(X, Reg(0)),
            }),
        ),
        (
            Time::from_ns(20),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 7,
                grant: Grant::S,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
        // Fill the 2-way set far enough to evict X: the tiny 4x2 array
        // hashes addresses, so simply touch several more lines.
        (
            Time::from_ns(40),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 2,
                instr: load(y, Reg(1)),
            }),
        ),
        (
            Time::from_ns(60),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: y,
                data: 8,
                grant: Grant::S,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
        // Direct Inv for X while stable-S (baseline sanity within the same
        // test): ack expected.
        (
            Time::from_ns(90),
            L1,
            SysMsg::Host(HostMsg::Inv {
                addr: X,
                requestor: ComponentId(1),
            }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Mesi, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    assert!(msgs.iter().any(|m| matches!(m, HostMsg::InvAck { .. })));
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(l1c.line_state(X), StableState::I);
    assert_eq!(l1c.line_state(y), StableState::S);
}

#[test]
fn mesif_forward_state_supplies_and_demotes() {
    let script = vec![
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: load(X, Reg(0)),
            }),
        ),
        // Granted F: this cache is the designated forwarder.
        (
            Time::from_ns(20),
            L1,
            SysMsg::Host(HostMsg::Data {
                addr: X,
                data: 3,
                grant: Grant::F,
                acks: 0,
                dirty: false,
                poisoned: false,
            }),
        ),
        // A forwarded read: supply, pass F to the requester, demote to S.
        (
            Time::from_ns(40),
            L1,
            SysMsg::Host(HostMsg::FwdGetS {
                addr: X,
                requestor: ComponentId(1),
                grant: Grant::F,
            }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Mesif, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(l1c.line(X), Some((StableState::S, 3)));
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    // Supplied with the F grant attached, clean, and no directory copy
    // needed (F is clean).
    assert!(msgs.iter().any(|m| matches!(
        m,
        HostMsg::Data {
            data: 3,
            grant: Grant::F,
            dirty: false,
            poisoned: false,
            ..
        }
    )));
    assert!(!msgs.iter().any(|m| matches!(m, HostMsg::DataToDir { .. })));
}

#[test]
fn rcc_atomic_executes_remotely() {
    let script = vec![
        (
            Time::from_ns(1),
            L1,
            SysMsg::CoreReq(CoreReq {
                tag: 1,
                instr: Instr::Rmw {
                    addr: X,
                    add: 4,
                    reg: Reg(2),
                    order: AccessOrder::SeqCst,
                },
            }),
        ),
        (
            Time::from_ns(30),
            L1,
            SysMsg::Host(HostMsg::AtomicResp { addr: X, old: 10 }),
        ),
    ];
    let (mut sim, l1, driver) = harness(ProtocolFamily::Rcc, script);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let msgs = host_msgs(&sim.component_as::<Driver>(driver).unwrap().log);
    // The RMW travelled to the directory level (GPU-style remote atomic).
    assert!(msgs
        .iter()
        .any(|m| matches!(m, HostMsg::AtomicRmw { add: 4, .. })));
    // The core received the old value.
    let resp = sim
        .component_as::<Driver>(driver)
        .unwrap()
        .log
        .iter()
        .find_map(|(_, m)| match m {
            SysMsg::CoreResp(r) => Some(r.value),
            _ => None,
        });
    assert_eq!(resp, Some(10));
    // No local copy is retained (it would go stale).
    let l1c = sim.component_as::<L1Controller>(l1).unwrap();
    assert_eq!(l1c.line_state(X), StableState::I);
}
