//! End-to-end coherence tests: sequential cores + private caches + a
//! directory, over a modelled interconnect. These exercise the full
//! message-level protocols (including 3-hop transfers, invalidation
//! fan-out, upgrades, evictions and writebacks) for every host family.

use c3_memsys::{GlobalMesiDir, L1Config, L1Controller, SeqCore};
use c3_protocol::msg::SysMsg;
use c3_protocol::ops::{Addr, Reg, ThreadProgram};
use c3_protocol::ssp::SspSpec;
use c3_protocol::states::ProtocolFamily;
use c3_sim::prelude::*;

/// Build a flat system: one directory, `programs.len()` cores each with a
/// private L1 of `family`, all wired point-to-point.
fn flat_system(
    family: ProtocolFamily,
    programs: Vec<ThreadProgram>,
    l1_sets: usize,
    l1_ways: usize,
) -> (Simulator<SysMsg>, Vec<ComponentId>, ComponentId) {
    let mut sim: Simulator<SysMsg> = Simulator::new(0xC3);
    // Directory policy: for RCC clusters the directory itself follows the
    // RCC policy; SWMR families use their own spec policy.
    let policy = SspSpec::for_family(family).dir;
    let dir = sim.add_component(Box::new(GlobalMesiDir::new(
        "dir",
        policy,
        Delay::from_ns(10),
    )));
    let mut cores = Vec::new();
    let mut l1s = Vec::new();
    for (i, prog) in programs.into_iter().enumerate() {
        // Core ids and L1 ids are interleaved; wire cores after l1 exists.
        let core_id = ComponentId((sim.component_count() + 1) as u32); // l1 first
        let l1 = sim.add_component(Box::new(L1Controller::new(
            format!("l1.{i}"),
            L1Config {
                family,
                sets: l1_sets,
                ways: l1_ways,
                hit_latency: Delay::from_cycles(1, 2_000),
                core: core_id,
                dir,
            },
        )));
        let core = sim.add_component(Box::new(SeqCore::new(format!("core.{i}"), l1, prog)));
        assert_eq!(core, core_id);
        cores.push(core);
        l1s.push(l1);
    }
    let mut nodes = l1s.clone();
    nodes.push(dir);
    sim.fabric_mut()
        .wire_p2p(&nodes, &LinkConfig::intra_cluster());
    (sim, cores, dir)
}

fn run(sim: &mut Simulator<SysMsg>) {
    sim.set_event_limit(50_000_000);
    let outcome = sim.run();
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "stuck components: {:?}",
        sim.pending_components()
    );
}

const SWMR_FAMILIES: [ProtocolFamily; 3] = [
    ProtocolFamily::Mesi,
    ProtocolFamily::Mesif,
    ProtocolFamily::Moesi,
];

const ALL_FAMILIES: [ProtocolFamily; 4] = [
    ProtocolFamily::Mesi,
    ProtocolFamily::Mesif,
    ProtocolFamily::Moesi,
    ProtocolFamily::Rcc,
];

#[test]
fn store_then_load_roundtrip() {
    for family in ALL_FAMILIES {
        let prog = ThreadProgram::new()
            .store(Addr(1), 42)
            .load(Addr(1), Reg(0))
            .store(Addr(2), 7)
            .load(Addr(2), Reg(1));
        let (mut sim, cores, _) = flat_system(family, vec![prog], 16, 2);
        run(&mut sim);
        let core = sim.component_as::<SeqCore>(cores[0]).unwrap();
        assert_eq!(core.reg(Reg(0)), 42, "{family}");
        assert_eq!(core.reg(Reg(1)), 7, "{family}");
    }
}

#[test]
fn eviction_pressure_preserves_values() {
    // Write far more lines than the tiny L1 holds, then read them all back:
    // every value must survive writeback + refetch.
    for family in ALL_FAMILIES {
        let n = 64u64;
        let mut prog = ThreadProgram::new();
        for i in 0..n {
            prog = prog.store(Addr(i), 1000 + i);
        }
        // RCC: values become globally visible at a release point.
        if family == ProtocolFamily::Rcc {
            prog = prog.fence();
        }
        for i in 0..n {
            prog = prog.load(Addr(i), Reg((i % 32) as u8));
        }
        let (mut sim, cores, dir) = flat_system(family, vec![prog], 2, 2);
        run(&mut sim);
        let core = sim.component_as::<SeqCore>(cores[0]).unwrap();
        // The last 32 loads' registers hold the last 32 values.
        for i in (n - 32)..n {
            assert_eq!(core.reg(Reg((i % 32) as u8)), 1000 + i, "{family} line {i}");
        }
        // Directory data must reflect writebacks for evicted lines.
        let d = sim.component_as::<GlobalMesiDir>(dir).unwrap();
        let mut synced = 0;
        for i in 0..n {
            if d.data(Addr(i)) == 1000 + i {
                synced += 1;
            }
        }
        assert!(
            synced >= (n / 2) as usize as u64,
            "{family}: only {synced} lines written back"
        );
    }
}

#[test]
fn rmw_contention_is_atomic() {
    // Two cores each perform 50 fetch-and-adds on one line. SWMR (or
    // directory-level atomics for RCC) must make the total exactly 100.
    for family in ALL_FAMILIES {
        let mk = || {
            let mut p = ThreadProgram::new();
            for _ in 0..50 {
                p = p.rmw(Addr(9), 1, Reg(0));
            }
            p
        };
        let (mut sim, _, dir) = flat_system(family, vec![mk(), mk()], 16, 2);
        run(&mut sim);
        let d = sim.component_as::<GlobalMesiDir>(dir).unwrap();
        // The final value lives either in a cache or at the directory; add
        // a probe: one more system where a third core reads after both.
        // Simpler: check via a read-back program on core 0 in a fresh run.
        let _ = d;
        let mk_with_readback = |read: bool| {
            let mut p = ThreadProgram::new();
            for _ in 0..50 {
                p = p.rmw(Addr(9), 1, Reg(0));
            }
            if read {
                p = p.work(200_000).rmw(Addr(9), 0, Reg(1));
            }
            p
        };
        let (mut sim, cores, _) = flat_system(
            family,
            vec![mk_with_readback(true), mk_with_readback(false)],
            16,
            2,
        );
        run(&mut sim);
        let core = sim.component_as::<SeqCore>(cores[0]).unwrap();
        assert_eq!(core.reg(Reg(1)), 100, "{family}: lost updates");
    }
}

#[test]
fn three_hop_transfer_moves_dirty_data() {
    // Core 0 dirties a line; core 1 (after a delay) reads it — the data
    // must come from core 0's cache via Fwd-GetS.
    for family in SWMR_FAMILIES {
        let p0 = ThreadProgram::new().store(Addr(3), 77);
        let p1 = ThreadProgram::new().work(2_000).load(Addr(3), Reg(2));
        let (mut sim, cores, _) = flat_system(family, vec![p0, p1], 16, 2);
        run(&mut sim);
        let c1 = sim.component_as::<SeqCore>(cores[1]).unwrap();
        assert_eq!(c1.reg(Reg(2)), 77, "{family}");
    }
}

#[test]
fn write_invalidates_remote_sharers() {
    // Core 1 reads a line (cached S), core 0 later writes it, core 1 reads
    // again — must observe the new value (its stale copy was invalidated).
    for family in SWMR_FAMILIES {
        let p0 = ThreadProgram::new().work(2_000).store(Addr(4), 5);
        let p1 = ThreadProgram::new()
            .load(Addr(4), Reg(0))
            .work(8_000)
            .load(Addr(4), Reg(1));
        let (mut sim, cores, _) = flat_system(family, vec![p0, p1], 16, 2);
        run(&mut sim);
        let c1 = sim.component_as::<SeqCore>(cores[1]).unwrap();
        assert_eq!(c1.reg(Reg(0)), 0, "{family}: initial value");
        assert_eq!(c1.reg(Reg(1)), 5, "{family}: stale copy survived");
    }
}

#[test]
fn rcc_acquire_refetches_fresh_data() {
    // RCC: core 1 caches a stale copy; core 0 writes + releases; core 1
    // acquire-loads and must see the new value.
    let p0 = ThreadProgram::new().work(2_000).store_rel(Addr(6), 11);
    let p1 = ThreadProgram::new()
        .load(Addr(6), Reg(0))
        .work(10_000)
        .load_acq(Addr(6), Reg(1));
    let (mut sim, cores, _) = flat_system(ProtocolFamily::Rcc, vec![p0, p1], 16, 2);
    run(&mut sim);
    let c1 = sim.component_as::<SeqCore>(cores[1]).unwrap();
    assert_eq!(c1.reg(Reg(0)), 0);
    assert_eq!(c1.reg(Reg(1)), 11, "acquire failed to self-invalidate");
}

#[test]
fn rcc_plain_load_may_stay_stale() {
    // Without an acquire, an RCC reader may legitimately keep its stale
    // copy — this documents the intended RCC semantics.
    let p0 = ThreadProgram::new().work(2_000).store_rel(Addr(6), 11);
    let p1 = ThreadProgram::new()
        .load(Addr(6), Reg(0))
        .work(10_000)
        .load(Addr(6), Reg(1));
    let (mut sim, cores, _) = flat_system(ProtocolFamily::Rcc, vec![p0, p1], 16, 2);
    run(&mut sim);
    let c1 = sim.component_as::<SeqCore>(cores[1]).unwrap();
    assert_eq!(c1.reg(Reg(1)), 0, "RCC must not eagerly invalidate");
}

#[test]
fn many_sharers_then_writer() {
    // 6 cores read a line; a 7th writes it; all invalidations must be
    // collected and the system must quiesce.
    for family in SWMR_FAMILIES {
        let mut progs: Vec<ThreadProgram> = (0..6)
            .map(|_| ThreadProgram::new().load(Addr(8), Reg(0)))
            .collect();
        progs.push(ThreadProgram::new().work(5_000).store(Addr(8), 1));
        let (mut sim, _, dir) = flat_system(family, progs, 16, 2);
        run(&mut sim);
        let d = sim.component_as::<GlobalMesiDir>(dir).unwrap();
        let _ = d;
    }
}

#[test]
fn miss_latency_statistics_recorded() {
    let prog = ThreadProgram::new().load(Addr(1), Reg(0)).store(Addr(2), 1);
    let (mut sim, _, _) = flat_system(ProtocolFamily::Mesi, vec![prog], 16, 2);
    run(&mut sim);
    let report = sim.report();
    assert_eq!(report.get("l1.0.load.misses"), Some(1.0));
    assert_eq!(report.get("l1.0.store.misses"), Some(1.0));
    // Flat-system misses resolve within the intra-cluster band.
    assert!(report.sum_prefix("l1.0.load.miss_count.") >= 1.0);
}
