//! End-to-end checks for the `protocheck` static-analysis CLI: the
//! shipped tables must pass cleanly, and each seeded defect class must
//! make it exit nonzero while naming the offending row.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_protocheck"))
        .args(args)
        .output()
        .expect("run protocheck");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn shipped_tables_are_clean() {
    let (ok, text) = run(&[]);
    assert!(ok, "protocheck failed on shipped tables:\n{text}");
    assert!(text.contains("clean"), "{text}");
}

#[test]
fn injected_missing_row_fails_naming_the_hole() {
    let (ok, text) = run(&["--inject", "missing-row"]);
    assert!(!ok, "missing-row injection not caught:\n{text}");
    assert!(
        text.contains("missing row: l1: (IS_D x Data)"),
        "defect does not name the deleted row:\n{text}"
    );
}

#[test]
fn injected_forbidden_state_fails_naming_the_row() {
    let (ok, text) = run(&["--inject", "forbidden-state"]);
    assert!(!ok, "forbidden-state injection not caught:\n{text}");
    assert!(
        text.contains("forbidden state reachable")
            && text.contains("enters forbidden state M")
            && text.contains("l1.rs:"),
        "defect does not name an offending row with provenance:\n{text}"
    );
}

#[test]
fn injected_cycle_fails_as_static_deadlock() {
    let (ok, text) = run(&["--inject", "cycle"]);
    assert!(!ok, "cycle injection not caught:\n{text}");
    assert!(
        text.contains("static deadlock") && text.contains("(Wb x Cmp)"),
        "defect does not name the self-cycle stall:\n{text}"
    );
}

#[test]
fn unknown_injection_is_rejected() {
    let (ok, text) = run(&["--inject", "nonsense"]);
    assert!(!ok);
    assert!(text.contains("unknown injection"), "{text}");
}
