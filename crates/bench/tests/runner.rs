//! Integration tests for the parallel experiment runner and the
//! event-kernel hot path it exercises:
//!
//! * N-thread output is byte-identical to 1-thread output on the same
//!   grid (determinism under parallelism);
//! * the `perf` microbench completes in `--quick` mode and reports
//!   nonzero events/sec;
//! * same-seed runs render byte-identical `report_dump`-style reports,
//!   pinned by fingerprint so fabric/kernel hot-path changes that shift
//!   behaviour (rather than just speed) fail loudly.

use c3::system::GlobalProtocol;
use c3_bench::runner::{self, Experiment};
use c3_bench::{run_workload, run_workload_with, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::WorkloadSpec;

fn tiny_grid() -> Vec<Experiment> {
    let mut grid = Vec::new();
    for name in ["vips", "histogram"] {
        let spec = WorkloadSpec::by_name(name).expect("workload");
        for global in [
            GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
            GlobalProtocol::Cxl,
        ] {
            let mut cfg = RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                global,
                (Mcm::Weak, Mcm::Weak),
            )
            .quick();
            cfg.ops_per_core = 120;
            grid.push(Experiment::new(spec, cfg));
        }
    }
    grid
}

/// The runner's deterministic JSON must not depend on how many worker
/// threads executed the grid (completion order is scheduling noise; the
/// results are keyed by config index).
#[test]
fn grid_json_is_thread_count_invariant() {
    let grid = tiny_grid();
    let one = runner::grid_json(&grid, &runner::run_grid(1, &grid), false);
    for threads in [2, 4, 8] {
        let n = runner::grid_json(&grid, &runner::run_grid(threads, &grid), false);
        assert_eq!(one, n, "JSON differs between 1 and {threads} threads");
    }
    // Sanity: the JSON actually carries the grid.
    assert_eq!(one.matches("\"outcome\":\"Completed\"").count(), grid.len());
}

/// Full per-cell equality (reports included), not just the JSON view.
#[test]
fn parallel_results_match_sequential_results() {
    let grid = tiny_grid();
    let seq = runner::run_grid(1, &grid);
    let par = runner::run_grid(4, &grid);
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(a.outcome, b.outcome, "cell {i}");
        assert_eq!(a.exec_ns, b.exec_ns, "cell {i}");
        assert_eq!(a.cluster_ns, b.cluster_ns, "cell {i}");
        assert_eq!(a.sim_ns, b.sim_ns, "cell {i}");
        assert_eq!(a.events, b.events, "cell {i}");
        assert_eq!(a.report, b.report, "cell {i}");
    }
}

/// `--bin perf --quick` must complete, report nonzero events/sec under
/// the committed alloc budget, and *append* to an existing trajectory
/// file rather than overwrite it.
#[test]
fn perf_quick_smoke() {
    let out = std::env::temp_dir().join(format!("c3-perf-smoke-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let budget = concat!(env!("CARGO_MANIFEST_DIR"), "/alloc_budget.txt");
    let run = |label: &str| {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_perf"))
            // Default --quick exchange count: the alloc budget amortizes
            // one-off setup allocations over it, so don't shrink it here.
            .args(["--quick", "--label", label])
            .args(["--alloc-budget", budget])
            .arg("--out")
            .arg(&out)
            .output()
            .expect("spawn perf");
        assert!(
            output.status.success(),
            "perf --quick ({label}) failed:\n{}{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
    };
    run("first");
    run("second");
    let json = std::fs::read_to_string(&out).expect("perf json written");
    let _ = std::fs::remove_file(&out);
    // Schema v2: a `runs` array accumulating both invocations, each with
    // a ping-pong, a workload, a metrics-enabled workload, and an OLTP
    // region-store measurement carrying throughput and allocs/event. The
    // bin itself exits nonzero on zero throughput or a blown alloc
    // budget, so reaching here already covers the gates — plus a direct
    // parse of every events_per_sec.
    assert!(json.contains("\"runs\": ["), "missing runs array in {json}");
    for (needle, n) in [
        ("\"config\": \"pingpong\"", 2),
        ("\"config\": \"vips/", 2),
        ("\"config\": \"metrics+vips/", 2),
        ("\"config\": \"oltp-quick/", 2),
        ("\"label\": \"first\"", 4),
        ("\"label\": \"second\"", 4),
        ("\"allocs_per_event\": ", 8),
    ] {
        assert_eq!(
            json.matches(needle).count(),
            n,
            "expected {n}x {needle} in {json}"
        );
    }
    let eps: Vec<f64> = json
        .match_indices("\"events_per_sec\": ")
        .map(|(i, pat)| {
            let rest = &json[i + pat.len()..];
            let end = rest.find(['}', ',']).unwrap();
            rest[..end].trim().parse().expect("events_per_sec number")
        })
        .collect();
    assert_eq!(eps.len(), 8, "eight measurements in {json}");
    assert!(eps.iter().all(|&e| e > 0.0), "zero throughput in {json}");
}

/// The conservative-PDES kernel must be a pure function of the seed and
/// the (topology-derived) shard plan — never of the worker-thread count.
/// A full system run (vips over CXL, telemetry on) must render the same
/// report, execution times, and metrics CSV for 1, 2, and 8 shard
/// threads.
#[test]
fn sharded_run_byte_identical_for_1_2_8_shards() {
    let spec = WorkloadSpec::by_name("vips").expect("workload");
    let run = |shards: usize| {
        let mut cfg = RunConfig::scaled(
            (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
            GlobalProtocol::Cxl,
            (Mcm::Weak, Mcm::Weak),
        )
        .quick()
        .metrics_ns(200)
        .with_shards(shards);
        cfg.ops_per_core = 120;
        let (r, csv) = run_workload_with(&spec, &cfg, |sim, _| sim.metrics().to_csv());
        (
            r.exec_ns,
            r.cluster_ns.clone(),
            format!("{:?}", r.report),
            csv,
        )
    };
    let one = run(1);
    assert!(one.0 > 0, "vips did not execute");
    assert!(one.3.lines().count() > 2, "telemetry CSV is empty");
    for shards in [2, 8] {
        assert_eq!(one, run(shards), "sharded run diverged at {shards} shards");
    }
}

/// Render a report the way `--bin report_dump` does.
fn render(spec: &WorkloadSpec, cfg: &RunConfig) -> String {
    let r = run_workload(spec, cfg);
    let mut lines: Vec<String> = r.report.iter().map(|(k, v)| format!("{k}={v}")).collect();
    lines.sort_unstable();
    format!("exec_ns={}\n{}", r.exec_ns, lines.join("\n"))
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Same-seed, same-config runs must render byte-identical reports, and
/// the rendering is pinned by fingerprint: any fabric/kernel "pure
/// optimization" that actually changes simulated behaviour (timing,
/// event counts, RNG draws) trips this test. Re-pin deliberately when a
/// behaviour change is intended (e.g. the inclusive-jitter fix).
#[test]
fn report_dump_byte_identity() {
    let spec = WorkloadSpec::by_name("barnes").expect("workload");
    let mut cfg = RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
        GlobalProtocol::Cxl,
        (Mcm::Weak, Mcm::Weak),
    )
    .quick();
    cfg.ops_per_core = 200;
    let a = render(&spec, &cfg);
    let b = render(&spec, &cfg);
    assert_eq!(a, b, "same-seed runs rendered different reports");
    assert_eq!(
        fnv1a(&a),
        4_553_830_574_658_468_899u64,
        "pinned report fingerprint changed — if the behaviour change is \
         intentional, re-pin this constant\nreport:\n{a}"
    );
}
