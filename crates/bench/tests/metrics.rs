//! Integration tests for the sampled-telemetry subsystem at the bench
//! level:
//!
//! * the acceptance run — metrics-enabled quick vips emits a ≥50-window
//!   timeseries covering link backlog, MSHR/directory occupancy and
//!   retry counters, byte-identical across same-seed reruns;
//! * metrics are additive — the metrics-on report minus `metrics.` keys
//!   equals the metrics-off report (sampling changes no behaviour);
//! * the metrics-on rendering is pinned by fingerprint, like the plain
//!   `report_dump` rendering in `runner.rs`;
//! * grid runs with metrics enabled stay thread-count invariant.

use c3::system::GlobalProtocol;
use c3_bench::runner::{self, Experiment};
use c3_bench::{build_sim, run_workload, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_sim::kernel::RunOutcome;
use c3_workloads::WorkloadSpec;

/// Quick vips under the paper's headline MESI-CXL-MESI config, with the
/// telemetry hub sampling every `metrics_ns` (None = disabled).
fn vips_cfg(metrics_ns: Option<u64>) -> RunConfig {
    let mut cfg = RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
        (Mcm::Weak, Mcm::Weak),
    )
    .quick();
    if let Some(ns) = metrics_ns {
        cfg = cfg.metrics_ns(ns);
    }
    cfg
}

/// Run quick vips to completion and return `(csv, windows, series names)`.
fn timeseries(cfg: &RunConfig) -> (String, usize, Vec<String>) {
    let spec = WorkloadSpec::by_name("vips").expect("workload");
    let (mut sim, _handles) = build_sim(&spec, cfg);
    assert_eq!(sim.run(), RunOutcome::Completed, "vips wedged");
    sim.sample_metrics_now();
    let hub = sim.metrics();
    (hub.to_csv(), hub.windows(), hub.metric_names().to_vec())
}

/// The acceptance run: quick vips at the `--bin metrics` default
/// interval must produce at least 50 windows whose series cover link
/// depth, MSHR and directory occupancy, and retry counters — and two
/// same-seed runs must emit byte-identical CSV.
#[test]
fn timeseries_covers_run_and_is_same_seed_byte_identical() {
    let cfg = vips_cfg(Some(25));
    let (a, windows, names) = timeseries(&cfg);
    let (b, _, _) = timeseries(&cfg);
    assert_eq!(a, b, "same-seed timeseries differ");
    assert!(windows >= 50, "expected >=50 windows, got {windows}");
    for needle in [
        "link.0.backlog_ns",    // per-link queue depth
        ".mshr",                // L1 MSHR occupancy
        ".blocking_snoops",     // DCOH directory occupancy
        ".inflight_fetches",    // bridge in-flight transactions
        ".retries",             // bridge retry counter
        "comp.cxl.dcoh.events", // per-component attribution
        "vnet.cxl.m2s.msgs",    // per-vnet message counts
    ] {
        assert!(
            names.iter().any(|n| n.contains(needle)),
            "no series matching {needle} among {names:?}"
        );
    }
}

/// Enabling metrics must not perturb the simulation: the metrics-on
/// report with its `metrics.` keys removed is exactly the metrics-off
/// report, and the extra keys all live under the `metrics.` prefix.
#[test]
fn report_is_additive_under_metrics() {
    let spec = WorkloadSpec::by_name("vips").expect("workload");
    let off = run_workload(&spec, &vips_cfg(None));
    let on = run_workload(&spec, &vips_cfg(Some(25)));
    assert_eq!(off.exec_ns, on.exec_ns, "metrics changed execution time");
    let lines = |r: &c3_sim::stats::Report, strip: bool| -> Vec<String> {
        let mut v: Vec<String> = r
            .iter()
            .filter(|(k, _)| !(strip && k.starts_with("metrics.")))
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        lines(&off.report, false),
        lines(&on.report, true),
        "metrics-on report (metrics. keys stripped) differs from metrics-off"
    );
    assert!(
        on.report.iter().any(|(k, _)| k.starts_with("metrics.")),
        "metrics-on report carries no metrics. keys"
    );
    assert!(
        off.report.iter().all(|(k, _)| !k.starts_with("metrics.")),
        "metrics-off report leaks metrics. keys"
    );
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The metrics-on output (report rendering plus the CSV timeseries) is
/// pinned by fingerprint, the metrics-enabled counterpart of
/// `report_dump_byte_identity` in `runner.rs`. Re-pin deliberately when
/// a schema or behaviour change is intended.
#[test]
fn metrics_output_fingerprint_pinned() {
    let cfg = vips_cfg(Some(25));
    let spec = WorkloadSpec::by_name("vips").expect("workload");
    let r = run_workload(&spec, &cfg);
    let mut lines: Vec<String> = r.report.iter().map(|(k, v)| format!("{k}={v}")).collect();
    lines.sort_unstable();
    let (csv, _, _) = timeseries(&cfg);
    let doc = format!("exec_ns={}\n{}\n{csv}", r.exec_ns, lines.join("\n"));
    assert_eq!(
        fnv1a(&doc),
        17_311_063_450_239_843_500u64,
        "pinned metrics-on fingerprint changed — if the schema/behaviour \
         change is intentional, re-pin this constant\ndoc:\n{doc}"
    );
}

/// Metrics-enabled grid runs must stay byte-identical between 1 and N
/// worker threads (sampling is driven purely by simulated time).
#[test]
fn metrics_grid_is_thread_count_invariant() {
    let mut grid = Vec::new();
    for name in ["vips", "histogram"] {
        let spec = WorkloadSpec::by_name(name).expect("workload");
        for global in [
            GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
            GlobalProtocol::Cxl,
        ] {
            let mut cfg = RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                global,
                (Mcm::Weak, Mcm::Weak),
            )
            .quick()
            .metrics_ns(25);
            cfg.ops_per_core = 120;
            grid.push(Experiment::new(spec, cfg));
        }
    }
    let one = runner::run_grid(1, &grid);
    for threads in [2, 8] {
        let n = runner::run_grid(threads, &grid);
        for (i, (a, b)) in one.iter().zip(&n).enumerate() {
            assert_eq!(a.outcome, b.outcome, "cell {i} ({threads} threads)");
            assert_eq!(a.events, b.events, "cell {i} ({threads} threads)");
            assert_eq!(a.report, b.report, "cell {i} ({threads} threads)");
        }
    }
    // Sanity: the grid reports actually carry the sampled series.
    assert!(
        one.iter()
            .all(|r| r.report.iter().any(|(k, _)| k.starts_with("metrics."))),
        "grid reports missing metrics. keys"
    );
}
