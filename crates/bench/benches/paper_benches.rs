//! Criterion benchmarks: scaled-down versions of each paper experiment
//! plus microbenchmarks of the performance-critical substrates.
//!
//! `cargo bench` runs everything; each figure has a corresponding bench
//! group so regressions in the experiment pipelines are caught.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use c3::generator::bridge_fsm;
use c3::system::GlobalProtocol;
use c3_bench::{run_workload, RunConfig};
use c3_mcm::harness::{run_litmus, LitmusConfig};
use c3_mcm::litmus::LitmusTest;
use c3_mcm::reference::allowed_outcomes;
use c3_memsys::cache::CacheArray;
use c3_protocol::mcm::Mcm;
use c3_protocol::ops::Addr;
use c3_protocol::states::ProtocolFamily;
use c3_verif::model::{check, ModelConfig};
use c3_workloads::WorkloadSpec;

fn microbenches(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.bench_function("cache_array_insert_get", |b| {
        b.iter_batched(
            || CacheArray::<u64>::new(256, 8),
            |mut cache| {
                for i in 0..4096u64 {
                    cache.insert(Addr(i % 1024), i);
                    cache.get(Addr((i * 7) % 1024));
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("generator_moesi_cxl", |b| {
        b.iter(|| bridge_fsm(ProtocolFamily::Moesi))
    });
    g.bench_function("reference_enumeration_iriw", |b| {
        let t = LitmusTest::iriw();
        let mcms = [Mcm::Tso, Mcm::Weak, Mcm::Tso, Mcm::Weak];
        b.iter(|| allowed_outcomes(&t.threads, &mcms, &t.observed))
    });
    g.finish();
}

fn verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verification");
    g.sample_size(10);
    g.bench_function("model_check_default", |b| {
        b.iter(|| {
            let r = check(&ModelConfig::default());
            assert!(r.violation.is_none());
            r.states
        })
    });
    g.finish();
}

fn litmus(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_litmus");
    g.sample_size(10);
    for (name, test) in [("mp", LitmusTest::mp()), ("sb", LitmusTest::sb())] {
        g.bench_function(name, |b| {
            let cfg = LitmusConfig::new(
                (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
                GlobalProtocol::Cxl,
                (Mcm::Tso, Mcm::Weak),
            )
            .runs(20);
            b.iter(|| {
                let r = run_litmus(&test, &cfg);
                assert!(r.passed());
                r.observed.len()
            })
        });
    }
    g.finish();
}

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_scaled");
    g.sample_size(10);
    // Fig. 10 slice: one contended and one streaming workload under the
    // baseline and the CXL configuration.
    for wname in ["histogram", "vips"] {
        for (gname, global) in [
            ("baseline", GlobalProtocol::Hierarchical(ProtocolFamily::Mesi)),
            ("cxl", GlobalProtocol::Cxl),
        ] {
            g.bench_function(format!("fig10_{wname}_{gname}"), |b| {
                let spec = WorkloadSpec::by_name(wname).expect("workload");
                let cfg = RunConfig::scaled(
                    (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                    global,
                    (Mcm::Weak, Mcm::Weak),
                )
                .quick();
                b.iter(|| run_workload(&spec, &cfg).exec_ns)
            });
        }
    }
    // Fig. 9 slice: the MCM knob.
    for (mname, mcms) in [
        ("arm", (Mcm::Weak, Mcm::Weak)),
        ("tso", (Mcm::Tso, Mcm::Tso)),
        ("mixed", (Mcm::Weak, Mcm::Tso)),
    ] {
        g.bench_function(format!("fig9_histogram_{mname}"), |b| {
            let spec = WorkloadSpec::by_name("histogram").expect("workload");
            let cfg = RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                GlobalProtocol::Cxl,
                mcms,
            )
            .quick();
            b.iter(|| run_workload(&spec, &cfg).exec_ns)
        });
    }
    g.finish();
}

criterion_group!(benches, microbenches, verification, litmus, figures);
criterion_main!(benches);
