//! Benchmarks: scaled-down versions of each paper experiment plus
//! microbenchmarks of the performance-critical substrates.
//!
//! `cargo bench` runs everything; pass a substring to run a subset
//! (`cargo bench -- fig10`). The harness is self-contained (no external
//! crates): each benchmark is timed with `std::time::Instant` over a
//! fixed iteration count after one warm-up pass, so regressions in the
//! experiment pipelines are caught without network access.

use std::time::Instant;

use c3::generator::bridge_fsm;
use c3::system::GlobalProtocol;
use c3_bench::{run_workload, RunConfig};
use c3_mcm::harness::{run_litmus, LitmusConfig};
use c3_mcm::litmus::LitmusTest;
use c3_mcm::reference::allowed_outcomes;
use c3_memsys::cache::CacheArray;
use c3_protocol::mcm::Mcm;
use c3_protocol::ops::Addr;
use c3_protocol::states::ProtocolFamily;
use c3_verif::model::{check, ModelConfig};
use c3_workloads::WorkloadSpec;

struct Harness {
    filter: Option<String>,
    ran: usize,
}

impl Harness {
    fn new() -> Self {
        // `cargo bench -- <filter>`; ignore libtest-style flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter, ran: 0 }
    }

    fn bench<R>(&mut self, name: &str, iters: u32, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;
        std::hint::black_box(f()); // warm-up
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let per = t0.elapsed().as_secs_f64() / iters as f64;
        let (val, unit) = if per < 1e-3 {
            (per * 1e6, "µs")
        } else {
            (per * 1e3, "ms")
        };
        println!("{name:<44} {val:>10.3} {unit}/iter  ({iters} iters)");
    }
}

fn microbenches(h: &mut Harness) {
    h.bench("substrates/cache_array_insert_get", 50, || {
        let mut cache = CacheArray::<u64>::new(256, 8);
        for i in 0..4096u64 {
            cache.insert(Addr(i % 1024), i);
            cache.get(Addr((i * 7) % 1024));
        }
        cache.len()
    });
    h.bench("substrates/generator_moesi_cxl", 20, || {
        bridge_fsm(ProtocolFamily::Moesi)
    });
    let iriw = LitmusTest::iriw();
    let mcms = [Mcm::Tso, Mcm::Weak, Mcm::Tso, Mcm::Weak];
    h.bench("substrates/reference_enumeration_iriw", 5, || {
        allowed_outcomes(&iriw.threads, &mcms, &iriw.observed)
    });
}

fn verification(h: &mut Harness) {
    h.bench("verification/model_check_default", 3, || {
        let r = check(&ModelConfig::default());
        assert!(r.violation.is_none());
        r.states
    });
}

fn litmus(h: &mut Harness) {
    for (name, test) in [("mp", LitmusTest::mp()), ("sb", LitmusTest::sb())] {
        let cfg = LitmusConfig::new(
            (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
            GlobalProtocol::Cxl,
            (Mcm::Tso, Mcm::Weak),
        )
        .runs(20);
        h.bench(&format!("table4_litmus/{name}"), 3, || {
            let r = run_litmus(&test, &cfg);
            assert!(r.passed());
            r.observed.len()
        });
    }
}

fn figures(h: &mut Harness) {
    // Fig. 10 slice: one contended and one streaming workload under the
    // baseline and the CXL configuration.
    for wname in ["histogram", "vips"] {
        for (gname, global) in [
            (
                "baseline",
                GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
            ),
            ("cxl", GlobalProtocol::Cxl),
        ] {
            let spec = WorkloadSpec::by_name(wname).expect("workload");
            let cfg = RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                global,
                (Mcm::Weak, Mcm::Weak),
            )
            .quick();
            h.bench(&format!("figures_scaled/fig10_{wname}_{gname}"), 3, || {
                run_workload(&spec, &cfg).exec_ns
            });
        }
    }
    // Fig. 9 slice: the MCM knob.
    for (mname, mcms) in [
        ("arm", (Mcm::Weak, Mcm::Weak)),
        ("tso", (Mcm::Tso, Mcm::Tso)),
        ("mixed", (Mcm::Weak, Mcm::Tso)),
    ] {
        let spec = WorkloadSpec::by_name("histogram").expect("workload");
        let cfg = RunConfig::scaled(
            (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
            GlobalProtocol::Cxl,
            mcms,
        )
        .quick();
        h.bench(&format!("figures_scaled/fig9_histogram_{mname}"), 3, || {
            run_workload(&spec, &cfg).exec_ns
        });
    }
}

fn main() {
    let mut h = Harness::new();
    microbenches(&mut h);
    verification(&mut h);
    litmus(&mut h);
    figures(&mut h);
    if h.ran == 0 {
        println!("no benchmarks matched the filter");
    }
}
