//! Counting global allocator for the perf microbench.
//!
//! Wall-clock events/sec is noisy (machine load, turbo states), but the
//! *allocation count* of a deterministic simulation is exact and
//! repeatable — the same seed takes the same code paths and grows the
//! same maps. `allocs-per-event` is therefore the gateable half of the
//! perf trajectory: CI asserts it never regresses past a committed
//! budget (see `--alloc-budget` in `--bin perf` and the perf-smoke job),
//! while events/sec is recorded but not gated.
//!
//! Hand-rolled on `std::alloc::System` — no external dependency, so
//! offline builds keep working. Install it per binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: c3_bench::alloc::CountingAlloc = c3_bench::alloc::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocation calls
/// (`alloc`, `alloc_zeroed`, and growth via `realloc`). Frees are not
/// counted: the budget tracks pressure on the allocator's hot path.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation calls since process start (monotonic; snapshot before and
/// after a region to count its allocations). Returns 0 unless
/// [`CountingAlloc`] is installed as the global allocator.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // `alloc_count` is exercised end-to-end by `--bin perf` (which
    // installs the allocator); here we only pin that the counter is
    // monotonic and safe to read without installation.
    #[test]
    fn counter_reads_without_installation() {
        let a = super::alloc_count();
        let b = super::alloc_count();
        assert!(b >= a);
    }
}
