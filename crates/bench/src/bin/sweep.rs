//! Sensitivity sweep: how the CXL-vs-baseline gap depends on the
//! cross-cluster link latency, and where the crossover to "negligible"
//! lies.
//!
//! The paper fixes the link latency at 70 ns (≈400 ns round trip, §V,
//! footnote 8). This sweep varies it: at on-chip-like latencies the CXL
//! protocol overhead (extra message delays + blocking directory) is the
//! dominant cost; as the link grows, raw propagation swamps everything
//! and the *relative* gap stabilizes — the protocol penalty scales with
//! the number of message hops, which is CXL's structural property.
//!
//! Usage: `cargo run --release -p c3-bench --bin sweep [-- --workload W]`

use c3::system::{ClusterSpec, GlobalProtocol, SystemBuilder};
use c3_mcm::core_model::{CoreConfig, TimingCore};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_sim::kernel::RunOutcome;
use c3_sim::time::Delay;
use c3_workloads::WorkloadSpec;

fn run(spec: &WorkloadSpec, global: GlobalProtocol, link_ns: u64) -> u64 {
    let cores = 4usize;
    let clusters = vec![
        ClusterSpec::new(ProtocolFamily::Mesi, cores).with_l1(128, 4),
        ClusterSpec::new(ProtocolFamily::Mesi, cores).with_l1(128, 4),
    ];
    let spec = *spec;
    let (mut sim, handles) = SystemBuilder::new(clusters, global)
        .cxl_cache(2048, 8)
        .link_latency(Delay::from_ns(link_ns))
        .build(move |ci, k, l1| {
            let thread = ci * cores + k;
            Box::new(TimingCore::new(
                format!("c{ci}.core{k}"),
                l1,
                CoreConfig::new(Mcm::Weak, ProtocolFamily::Mesi),
                spec.generate(thread, cores * 2, 1000, 0xC3),
                0xC3 ^ (thread as u64) << 32,
            ))
        });
    sim.set_event_limit(400_000_000);
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{:?}",
        sim.pending_components()
    );
    let mut exec = 0;
    for cluster in &handles.cores {
        for &c in cluster {
            let tc = sim.component_as::<TimingCore>(c).expect("core");
            exec = exec.max(tc.finished_at().map(|t| t.as_ns()).unwrap_or(0));
        }
    }
    exec
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wname = if args.len() >= 3 && args[1] == "--workload" {
        args[2].clone()
    } else {
        "histogram".to_string()
    };
    let spec = WorkloadSpec::by_name(&wname).expect("workload");
    println!("Link-latency sweep, workload {wname} (normalized CXL/baseline):");
    println!(
        "{:>9} {:>12} {:>12} {:>8}",
        "link(ns)", "baseline(ns)", "cxl(ns)", "ratio"
    );
    for link_ns in [5, 15, 35, 70, 140, 280] {
        let base = run(
            &spec,
            GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
            link_ns,
        );
        let cxl = run(&spec, GlobalProtocol::Cxl, link_ns);
        println!(
            "{:>9} {:>12} {:>12} {:>8.3}",
            link_ns,
            base,
            cxl,
            cxl as f64 / base as f64
        );
    }
    println!("\n(70 ns is the paper's Table III operating point)");
}
