//! Sensitivity sweep: how the CXL-vs-baseline gap depends on the
//! cross-cluster link latency, and where the crossover to "negligible"
//! lies.
//!
//! The paper fixes the link latency at 70 ns (≈400 ns round trip, §V,
//! footnote 8). This sweep varies it: at on-chip-like latencies the CXL
//! protocol overhead (extra message delays + blocking directory) is the
//! dominant cost; as the link grows, raw propagation swamps everything
//! and the *relative* gap stabilizes — the protocol penalty scales with
//! the number of message hops, which is CXL's structural property.
//!
//! All 12 grid cells (6 latencies × 2 globals) run in parallel on the
//! shared runner; the table is identical for any thread count.
//!
//! Usage: `cargo run --release -p c3-bench --bin sweep
//! [-- --workload W] [--threads N] [--json PATH]`

use c3::system::GlobalProtocol;
use c3_bench::runner::{self, Experiment};
use c3_bench::RunConfig;
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut wname = "histogram".to_string();
    let mut threads = runner::default_threads();
    let mut json: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                wname = args[i + 1].clone();
                i += 2;
            }
            "--threads" => {
                threads = args[i + 1].parse().expect("threads");
                i += 2;
            }
            "--json" => {
                json = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown arg {other}"),
        }
    }
    let spec = WorkloadSpec::by_name(&wname).expect("workload");

    let link_points: [u64; 6] = [5, 15, 35, 70, 140, 280];
    let mut grid = Vec::new();
    for &link_ns in &link_points {
        for global in [
            GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
            GlobalProtocol::Cxl,
        ] {
            let mut cfg = RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                global,
                (Mcm::Weak, Mcm::Weak),
            )
            .link_ns(link_ns);
            cfg.ops_per_core = 1000;
            grid.push(Experiment::new(spec, cfg).tagged(format!("link{link_ns}/{}", cfg.label())));
        }
    }

    let results = runner::run_grid(threads, &grid);

    println!("Link-latency sweep, workload {wname} (normalized CXL/baseline):");
    println!(
        "{:>9} {:>12} {:>12} {:>8}",
        "link(ns)", "baseline(ns)", "cxl(ns)", "ratio"
    );
    for (i, &link_ns) in link_points.iter().enumerate() {
        let base = results[2 * i].expect_completed(&grid[2 * i].tag).exec_ns;
        let cxl = results[2 * i + 1]
            .expect_completed(&grid[2 * i + 1].tag)
            .exec_ns;
        println!(
            "{:>9} {:>12} {:>12} {:>8.3}",
            link_ns,
            base,
            cxl,
            cxl as f64 / base as f64
        );
    }
    println!("\n(70 ns is the paper's Table III operating point)");
    if let Some(path) = json {
        std::fs::write(&path, runner::grid_json(&grid, &results, true)).expect("write json");
        println!("(wrote {path})");
    }
}
