//! `report_dump` — print the complete statistics report of a few fixed
//! runs, one `key=value` per line, sorted.
//!
//! Exists for byte-identical regression checks: pipe the output to a file
//! on two builds (or two revisions) and `diff`. With no fault plan and no
//! resilience configured, any difference is an unintended behaviour
//! change.
//!
//! ```text
//! cargo run -p c3-bench --bin report_dump > /tmp/a.txt
//! git stash && cargo run -p c3-bench --bin report_dump > /tmp/b.txt
//! diff /tmp/a.txt /tmp/b.txt
//! ```

use c3::system::GlobalProtocol;
use c3_bench::{run_workload, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::WorkloadSpec;

fn main() {
    for name in ["vips", "barnes", "dedup"] {
        let spec = WorkloadSpec::by_name(name).expect("workload");
        for global in [
            GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
            GlobalProtocol::Cxl,
        ] {
            let mut cfg = RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
                global,
                (Mcm::Weak, Mcm::Weak),
            );
            cfg.ops_per_core = 300;
            let r = run_workload(&spec, &cfg);
            println!("## {name} {global:?} exec_ns={}", r.exec_ns);
            let mut lines: Vec<String> = r.report.iter().map(|(k, v)| format!("{k}={v}")).collect();
            lines.sort_unstable();
            for l in lines {
                println!("{l}");
            }
        }
    }
}
