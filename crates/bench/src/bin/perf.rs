//! `perf` — kernel-throughput microbench tracking the perf trajectory.
//!
//! Two measurements:
//!
//! * **ping-pong**: two components exchanging one message over a single
//!   intra-cluster link — a pure event-kernel hot-path workload (heap
//!   pop, fabric deliver, handler dispatch, outbox drain) with almost no
//!   component logic, so events/sec here is the kernel's ceiling;
//! * **workload**: a real C³ run (`vips`, MESI-CXL-MESI) — events/sec
//!   with protocol logic, caches and the full topology in the loop.
//!
//! Writes the measurements as JSON (default `BENCH_perf.json`) so CI can
//! archive one point per commit. Exits nonzero if either measurement
//! reports zero throughput.
//!
//! Usage: `cargo run --release -p c3-bench --bin perf [-- --quick]
//! [--exchanges N] [--out PATH]`

use std::any::Any;

use c3::system::GlobalProtocol;
use c3_bench::runner::{self, Experiment};
use c3_bench::RunConfig;
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_sim::prelude::*;
use c3_workloads::WorkloadSpec;

#[derive(Debug, Clone)]
struct Ball(u64);
impl Message for Ball {}

/// Ping-pong player: returns the ball until the exchange budget drains.
struct Player {
    peer: Option<ComponentId>,
    budget: u64,
    serve: bool,
    done: bool,
}

impl Component<Ball> for Player {
    fn name(&self) -> String {
        "player".into()
    }
    fn start(&mut self, ctx: &mut Ctx<'_, Ball>) {
        if self.serve {
            ctx.send(self.peer.unwrap(), Ball(0));
        }
    }
    fn handle(&mut self, msg: Ball, _src: ComponentId, ctx: &mut Ctx<'_, Ball>) {
        if msg.0 < self.budget {
            ctx.send(self.peer.unwrap(), Ball(msg.0 + 1));
        } else {
            self.done = true;
        }
    }
    fn done(&self) -> bool {
        self.done || !self.serve
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// (events, sim_ns, wall_ms, events_per_sec) of an `exchanges`-long
/// ping-pong over one intra-cluster link.
fn pingpong(exchanges: u64) -> (u64, u64, f64, f64) {
    // Odd-numbered balls land on the server, whose `done` flag gates the
    // run — an odd budget puts the final ball there.
    let exchanges = exchanges | 1;
    let mut sim: Simulator<Ball> = Simulator::new(1);
    let a = sim.add_component(Box::new(Player {
        peer: None,
        budget: exchanges,
        serve: true,
        done: false,
    }));
    let b = sim.add_component(Box::new(Player {
        peer: None,
        budget: exchanges,
        serve: false,
        done: false,
    }));
    sim.component_as_mut::<Player>(a).unwrap().peer = Some(b);
    sim.component_as_mut::<Player>(b).unwrap().peer = Some(a);
    let link = sim.fabric_mut().add_link(LinkConfig::intra_cluster());
    sim.fabric_mut().set_route_bidi(a, b, vec![link]);
    sim.set_perf_reporting(true);
    assert_eq!(sim.run(), RunOutcome::Completed, "ping-pong wedged");
    let report = sim.report();
    let eps = report
        .get("sim.events_per_sec")
        .expect("perf reporting surfaces sim.events_per_sec");
    (
        sim.events_processed(),
        sim.now().as_ns(),
        sim.wall_time().as_secs_f64() * 1_000.0,
        eps,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut exchanges: Option<u64> = None;
    let mut out = "BENCH_perf.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--exchanges" => {
                exchanges = Some(args[i + 1].parse().expect("exchanges"));
                i += 2;
            }
            "--out" => {
                out = args[i + 1].clone();
                i += 2;
            }
            other => panic!("unknown arg {other}"),
        }
    }
    let exchanges = exchanges.unwrap_or(if quick { 200_000 } else { 2_000_000 }) | 1;

    let (pp_events, pp_sim_ns, pp_wall_ms, pp_eps) = pingpong(exchanges);
    println!(
        "pingpong : {pp_events} events in {pp_wall_ms:.1} ms -> {:.2} M events/sec",
        pp_eps / 1e6
    );

    let mut cfg = RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
        (Mcm::Weak, Mcm::Weak),
    );
    if quick {
        cfg = cfg.quick();
    }
    let spec = WorkloadSpec::by_name("vips").expect("workload");
    let exp = Experiment::new(spec, cfg);
    let r = runner::run_experiment(&exp);
    r.expect_completed(&exp.tag);
    println!(
        "workload : {} ({}) {} events in {:.1} ms -> {:.2} M events/sec",
        spec.name,
        cfg.label(),
        r.events,
        r.wall_ms,
        r.events_per_sec / 1e6
    );

    let json = format!(
        "{{\n  \"bench\": \"perf\",\n  \"quick\": {quick},\n  \"pingpong\": {{\"exchanges\": \
         {exchanges}, \"events\": {pp_events}, \"sim_ns\": {pp_sim_ns}, \"wall_ms\": \
         {pp_wall_ms:.3}, \"events_per_sec\": {pp_eps:.0}}},\n  \"workload\": {{\"name\": \
         \"{}\", \"config\": \"{}\", \"events\": {}, \"sim_ns\": {}, \"exec_ns\": {}, \
         \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}}\n}}\n",
        runner::json_escape(spec.name),
        runner::json_escape(&cfg.label()),
        r.events,
        r.sim_ns,
        r.exec_ns,
        r.wall_ms,
        r.events_per_sec,
    );
    std::fs::write(&out, &json).expect("write perf json");
    println!("(wrote {out})");

    if pp_eps <= 0.0 || r.events_per_sec <= 0.0 {
        eprintln!("perf: zero throughput measured");
        std::process::exit(1);
    }
}
