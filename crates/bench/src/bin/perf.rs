//! `perf` — kernel-throughput microbench tracking the perf trajectory.
//!
//! Four measurements:
//!
//! * **ping-pong**: two components exchanging one message over a single
//!   intra-cluster link — a pure event-kernel hot-path workload (calendar
//!   queue pop, fabric deliver, handler dispatch) with almost no
//!   component logic, so events/sec here is the kernel's ceiling;
//! * **workload**: a real C³ run (`vips`, MESI-CXL-MESI) — events/sec
//!   with protocol logic, caches and the full topology in the loop;
//! * **metrics**: the same vips run with sampled telemetry enabled
//!   (`metrics+vips/...`) — bounds the allocation cost of the metrics
//!   hub's steady-state sampling;
//! * **oltp**: the OLTP/KV quick cell (`oltp-quick/...`, skew 0.99,
//!   `state_metrics` on) — bounds the region store's promote/demote
//!   churn, which must recycle allocations at steady state.
//!
//! Each measurement reports **events/sec** (wall-clock, noisy) and
//! **allocs/event** (exact and deterministic for a seed — the process
//! runs under [`c3_bench::alloc::CountingAlloc`]). Results append to the
//! `runs` array of the output JSON (default `BENCH_perf.json`), so
//! successive invocations — and CI's per-commit artifacts — accumulate
//! comparable points instead of overwriting each other.
//!
//! With `--shards n1,n2,...` the bin additionally measures a PDES-scaled
//! run per requested shard-thread count: vips on an **8-cluster** system
//! (`shard{n}+vips8c/...`), executed by the conservative parallel kernel
//! ([`Simulator::run_sharded`]). These entries are opt-in so the default
//! four-measurement output (and the `perf_quick_smoke` shape test) stays
//! stable.
//!
//! Exits nonzero if any measurement reports zero throughput, if
//! `--alloc-budget FILE` is given and a measurement exceeds its
//! committed allocs/event budget (the deterministic perf gate; see
//! `crates/bench/alloc_budget.txt` and the perf-smoke CI job), or if
//! `--floor-label TEXT` is given and the ping-pong or vips throughput
//! drops more than 20% below the best committed same-`quick` entry
//! under that label (the wall-clock regression floors).
//!
//! Usage: `cargo run --release -p c3-bench --bin perf [-- --quick]
//! [--exchanges N] [--out PATH] [--label TEXT] [--alloc-budget FILE]
//! [--shards n1,n2,...] [--floor-label TEXT]`

use std::any::Any;

use c3::system::GlobalProtocol;
use c3_bench::alloc::{alloc_count, CountingAlloc};
use c3_bench::runner::{self, json_escape, Experiment};
use c3_bench::RunConfig;
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_sim::prelude::*;
use c3_workloads::WorkloadSpec;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[derive(Debug, Clone)]
struct Ball(u64);
impl Message for Ball {}

/// Ping-pong player: returns the ball until the exchange budget drains.
struct Player {
    peer: Option<ComponentId>,
    budget: u64,
    serve: bool,
    done: bool,
}

impl Component<Ball> for Player {
    fn name(&self) -> String {
        "player".into()
    }
    fn start(&mut self, ctx: &mut Ctx<'_, Ball>) {
        if self.serve {
            ctx.send(self.peer.unwrap(), Ball(0));
        }
    }
    fn handle(&mut self, msg: Ball, _src: ComponentId, ctx: &mut Ctx<'_, Ball>) {
        if msg.0 < self.budget {
            ctx.send(self.peer.unwrap(), Ball(msg.0 + 1));
        } else {
            self.done = true;
        }
    }
    fn done(&self) -> bool {
        self.done || !self.serve
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One measured run, rendered as an entry of the JSON `runs` array.
struct Measurement {
    config: String,
    events: u64,
    sim_ns: u64,
    exec_ns: Option<u64>,
    wall_ms: f64,
    events_per_sec: f64,
    allocs: u64,
    allocs_per_event: f64,
}

impl Measurement {
    fn to_json(&self, label: &str, quick: bool) -> String {
        let exec = self
            .exec_ns
            .map(|n| format!("\"exec_ns\": {n}, "))
            .unwrap_or_default();
        format!(
            "{{\"label\": \"{}\", \"config\": \"{}\", \"quick\": {quick}, \"events\": {}, \
             \"sim_ns\": {}, {exec}\"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, \
             \"allocs\": {}, \"allocs_per_event\": {:.4}}}",
            json_escape(label),
            json_escape(&self.config),
            self.events,
            self.sim_ns,
            self.wall_ms,
            self.events_per_sec,
            self.allocs,
            self.allocs_per_event,
        )
    }
}

/// Measure an `exchanges`-long ping-pong over one intra-cluster link.
fn pingpong(exchanges: u64) -> Measurement {
    // Odd-numbered balls land on the server, whose `done` flag gates the
    // run — an odd budget puts the final ball there.
    let exchanges = exchanges | 1;
    let mut sim: Simulator<Ball> = Simulator::new(1);
    let a = sim.add_component(Box::new(Player {
        peer: None,
        budget: exchanges,
        serve: true,
        done: false,
    }));
    let b = sim.add_component(Box::new(Player {
        peer: None,
        budget: exchanges,
        serve: false,
        done: false,
    }));
    sim.component_as_mut::<Player>(a).unwrap().peer = Some(b);
    sim.component_as_mut::<Player>(b).unwrap().peer = Some(a);
    let link = sim.fabric_mut().add_link(LinkConfig::intra_cluster());
    sim.fabric_mut().set_route_bidi(a, b, vec![link]);
    sim.set_perf_reporting(true);
    let a0 = alloc_count();
    assert_eq!(sim.run(), RunOutcome::Completed, "ping-pong wedged");
    let allocs = alloc_count() - a0;
    let report = sim.report();
    let eps = report
        .get("sim.events_per_sec")
        .expect("perf reporting surfaces sim.events_per_sec");
    Measurement {
        config: "pingpong".into(),
        events: sim.events_processed(),
        sim_ns: sim.now().as_ns(),
        exec_ns: None,
        wall_ms: sim.wall_time().as_secs_f64() * 1_000.0,
        events_per_sec: eps,
        allocs,
        allocs_per_event: allocs as f64 / sim.events_processed().max(1) as f64,
    }
}

/// Measure the real vips run (MESI-CXL-MESI, the paper's headline
/// config). With `metrics` the sampled-telemetry hub runs at the
/// `--bin metrics` default interval, so the gate also bounds the
/// steady-state sampling cost (registration allocates once; each window
/// after that must reuse its buffers).
fn workload(quick: bool, metrics: bool) -> Measurement {
    let mut cfg = RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
        (Mcm::Weak, Mcm::Weak),
    );
    if quick {
        cfg = cfg.quick();
    }
    if metrics {
        cfg = cfg.metrics_ns(if quick { 25 } else { 100 });
    }
    let spec = WorkloadSpec::by_name("vips").expect("workload");
    let exp = Experiment::new(spec, cfg);
    let a0 = alloc_count();
    let r = runner::run_experiment(&exp);
    let allocs = alloc_count() - a0;
    r.expect_completed(&exp.tag);
    let config = if metrics {
        format!("metrics+{}", exp.tag)
    } else {
        exp.tag.clone()
    };
    Measurement {
        config,
        events: r.events,
        sim_ns: r.sim_ns,
        exec_ns: Some(r.exec_ns),
        wall_ms: r.wall_ms,
        events_per_sec: r.events_per_sec,
        allocs,
        allocs_per_event: allocs as f64 / r.events.max(1) as f64,
    }
}

/// Measure the OLTP/KV engine's quick cell (2¹⁴ keys, skew 0.99, two
/// clusters, `state_metrics` on — the `--bin oltp --quick` hot cell).
/// This is the region store's churn workload: every directory line
/// promotes and demotes around each transaction, so its allocs/event
/// budget is what keeps the promotion/demotion cycle
/// allocation-recycling instead of per-event allocating.
fn workload_oltp(quick: bool) -> Measurement {
    let mut spec = WorkloadSpec::by_name("oltp-quick").expect("workload");
    spec.zipf_skew = 0.99;
    let mut cfg = RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
        (Mcm::Weak, Mcm::Weak),
    )
    .with_clusters(2)
    .with_state_metrics();
    cfg.ops_per_core = if quick { 300 } else { 3000 };
    let exp = Experiment::new(spec, cfg);
    let a0 = alloc_count();
    let r = runner::run_experiment(&exp);
    let allocs = alloc_count() - a0;
    r.expect_completed(&exp.tag);
    Measurement {
        config: exp.tag.clone(),
        events: r.events,
        sim_ns: r.sim_ns,
        exec_ns: Some(r.exec_ns),
        wall_ms: r.wall_ms,
        events_per_sec: r.events_per_sec,
        allocs,
        allocs_per_event: allocs as f64 / r.events.max(1) as f64,
    }
}

/// Measure vips on an 8-cluster system under the conservative-PDES
/// kernel with `shards` worker threads. Eight clusters give the shard
/// planner eight cluster domains plus the DCOH domain, so the
/// measurement exercises real cross-domain merge traffic at every
/// requested thread count.
fn workload_sharded(quick: bool, shards: usize) -> Measurement {
    let mut cfg = RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
        (Mcm::Weak, Mcm::Weak),
    )
    .with_clusters(8)
    .with_shards(shards);
    if quick {
        cfg = cfg.quick();
    }
    // Dense per-cluster traffic: the conservative windows are bounded by
    // the CXL lookahead (~70 ns), so scaling needs enough concurrent
    // cores that every domain has real work inside each window.
    cfg.cores_per_cluster = 16;
    let spec = WorkloadSpec::by_name("vips").expect("workload");
    let exp = Experiment::new(spec, cfg);
    let a0 = alloc_count();
    let r = runner::run_experiment(&exp);
    let allocs = alloc_count() - a0;
    r.expect_completed(&exp.tag);
    Measurement {
        config: format!("shard{shards}+vips8c/{}", exp.cfg.label()),
        events: r.events,
        sim_ns: r.sim_ns,
        exec_ns: Some(r.exec_ns),
        wall_ms: r.wall_ms,
        events_per_sec: r.events_per_sec,
        allocs,
        allocs_per_event: allocs as f64 / r.events.max(1) as f64,
    }
}

/// Pull the entries of the `"runs": [...]` array out of a previously
/// written document, so a new invocation appends rather than overwrites.
/// Returns `None` for missing files or pre-`runs` (schema 1) documents.
fn previous_runs(path: &str) -> Option<String> {
    let doc = std::fs::read_to_string(path).ok()?;
    let start = doc.find("\"runs\": [")? + "\"runs\": [".len();
    let mut depth = 1usize;
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in doc[start..].char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    let body = doc[start..start + i].trim();
                    return (!body.is_empty()).then(|| body.to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Best committed throughput for a `config` prefix under `label` with
/// the same `quick` flag, scanned from a previously written document's
/// `runs` entries (one JSON object per line, as this bin writes them).
/// `None` when the label has no committed baseline for that config yet.
fn best_throughput(prev: &str, label: &str, quick: bool, config_prefix: &str) -> Option<f64> {
    let config_needle = format!("\"config\": \"{config_prefix}");
    let label_needle = format!("\"label\": \"{}\"", json_escape(label));
    let quick_needle = format!("\"quick\": {quick}");
    let mut best: Option<f64> = None;
    for line in prev.lines() {
        if !(line.contains(&config_needle)
            && line.contains(&label_needle)
            && line.contains(&quick_needle))
        {
            continue;
        }
        let Some(i) = line.find("\"events_per_sec\": ") else {
            continue;
        };
        let rest = &line[i + "\"events_per_sec\": ".len()..];
        let end = rest.find(['}', ',']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            best = Some(best.map_or(v, |b: f64| b.max(v)));
        }
    }
    best
}

/// Parse the committed budget file: `<config-prefix> <max-allocs-per-event>`
/// per line, `#` comments allowed.
fn parse_budget(path: &str) -> Vec<(String, f64)> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read alloc budget {path}: {e}"));
    text.lines()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, limit) = l.split_once(char::is_whitespace).expect("budget line");
            (
                name.to_string(),
                limit.trim().parse().expect("budget value"),
            )
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut exchanges: Option<u64> = None;
    let mut out = "BENCH_perf.json".to_string();
    let mut label = "local".to_string();
    let mut budget_file: Option<String> = None;
    let mut shard_counts: Vec<usize> = Vec::new();
    let mut floor_label: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--exchanges" => {
                exchanges = Some(args[i + 1].parse().expect("exchanges"));
                i += 2;
            }
            "--out" => {
                out = args[i + 1].clone();
                i += 2;
            }
            "--label" => {
                label = args[i + 1].clone();
                i += 2;
            }
            "--alloc-budget" => {
                budget_file = Some(args[i + 1].clone());
                i += 2;
            }
            "--shards" => {
                shard_counts = args[i + 1]
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard count"))
                    .collect();
                i += 2;
            }
            "--floor-label" => {
                floor_label = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown arg {other}"),
        }
    }
    let exchanges = exchanges.unwrap_or(if quick { 200_000 } else { 2_000_000 }) | 1;

    let pp = pingpong(exchanges);
    println!(
        "pingpong : {} events in {:.1} ms -> {:.2} M events/sec, {:.4} allocs/event",
        pp.events,
        pp.wall_ms,
        pp.events_per_sec / 1e6,
        pp.allocs_per_event
    );
    let wl = workload(quick, false);
    println!(
        "workload : {} {} events in {:.1} ms -> {:.2} M events/sec, {:.4} allocs/event",
        wl.config,
        wl.events,
        wl.wall_ms,
        wl.events_per_sec / 1e6,
        wl.allocs_per_event
    );
    let wlm = workload(quick, true);
    println!(
        "metrics  : {} {} events in {:.1} ms -> {:.2} M events/sec, {:.4} allocs/event",
        wlm.config,
        wlm.events,
        wlm.wall_ms,
        wlm.events_per_sec / 1e6,
        wlm.allocs_per_event
    );
    let wlo = workload_oltp(quick);
    println!(
        "oltp     : {} {} events in {:.1} ms -> {:.2} M events/sec, {:.4} allocs/event",
        wlo.config,
        wlo.events,
        wlo.wall_ms,
        wlo.events_per_sec / 1e6,
        wlo.allocs_per_event
    );

    let mut shard_ms: Vec<Measurement> = Vec::new();
    for &n in &shard_counts {
        let m = workload_sharded(quick, n);
        println!(
            "shards   : {} {} events in {:.1} ms -> {:.2} M events/sec, {:.4} allocs/event",
            m.config,
            m.events,
            m.wall_ms,
            m.events_per_sec / 1e6,
            m.allocs_per_event
        );
        shard_ms.push(m);
    }

    // Capture the committed entries before appending: the floor gate
    // below must compare against history, not against this run.
    let prev = previous_runs(&out);
    let mut entries: Vec<String> = Vec::new();
    if let Some(p) = &prev {
        entries.push(p.clone());
    }
    entries.push(pp.to_json(&label, quick));
    entries.push(wl.to_json(&label, quick));
    entries.push(wlm.to_json(&label, quick));
    entries.push(wlo.to_json(&label, quick));
    for m in &shard_ms {
        entries.push(m.to_json(&label, quick));
    }
    let json = format!(
        "{{\n  \"bench\": \"perf\",\n  \"schema\": 2,\n  \"runs\": [\n    {}\n  ]\n}}\n",
        entries.join(",\n    ")
    );
    std::fs::write(&out, &json).expect("write perf json");
    println!("(wrote {out})");

    if [&pp, &wl, &wlm, &wlo]
        .into_iter()
        .chain(&shard_ms)
        .any(|m| m.events_per_sec <= 0.0)
    {
        eprintln!("perf: zero throughput measured");
        std::process::exit(1);
    }

    if let Some(flabel) = floor_label {
        // The kernel ceiling (pingpong) and the full-system hot path
        // (vips) both gate: a regression confined to protocol/cache
        // logic leaves pingpong untouched but still drags vips.
        for (name, m, prefix) in [("pingpong", &pp, "pingpong"), ("vips", &wl, "vips/")] {
            match prev
                .as_deref()
                .and_then(|p| best_throughput(p, &flabel, quick, prefix))
            {
                Some(base) => {
                    let floor = base * 0.8;
                    if m.events_per_sec < floor {
                        eprintln!(
                            "perf: {name} {:.2} M events/sec is below the floor {:.2} M \
                             (80% of the best committed '{flabel}' entry, {:.2} M)",
                            m.events_per_sec / 1e6,
                            floor / 1e6,
                            base / 1e6
                        );
                        std::process::exit(1);
                    }
                    println!(
                        "floor   : {name} {:.2} M events/sec >= {:.2} M (80% of '{flabel}' best)",
                        m.events_per_sec / 1e6,
                        floor / 1e6
                    );
                }
                None => {
                    println!("floor   : no committed '{flabel}' {name} baseline yet; skipping")
                }
            }
        }
    }

    if let Some(path) = budget_file {
        let mut failed = false;
        for (prefix, limit) in parse_budget(&path) {
            let m = [&pp, &wl, &wlm, &wlo]
                .into_iter()
                .find(|m| m.config.starts_with(&prefix));
            match m {
                Some(m) if m.allocs_per_event > limit => {
                    eprintln!(
                        "perf: {} allocs/event {:.4} exceeds budget {limit} ({path})",
                        m.config, m.allocs_per_event
                    );
                    failed = true;
                }
                Some(m) => println!(
                    "budget  : {} {:.4} allocs/event <= {limit}",
                    m.config, m.allocs_per_event
                ),
                None => {
                    eprintln!("perf: budget entry {prefix} matches no measurement");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
