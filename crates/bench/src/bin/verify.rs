//! Formal verification driver (§VI-A): exhaustive model checking of the
//! C³ design plus static checks on every generated compound FSM.
//!
//! Usage: `cargo run --release -p c3-bench --bin verify [-- --big]`
//! (`--big` also explores the two-cores-per-cluster model)

use c3::generator::{baseline_fsm, bridge_fsm};
use c3_protocol::states::ProtocolFamily;
use c3_verif::fsm_checks::check_fsm;
use c3_verif::model::{check, ModelConfig};

fn main() {
    let big = std::env::args().any(|a| a == "--big");

    println!("== Static checks on generated compound FSMs ==");
    let mut ok = true;
    for fam in [
        ProtocolFamily::Mesi,
        ProtocolFamily::Mesif,
        ProtocolFamily::Moesi,
        ProtocolFamily::Rcc,
    ] {
        let fsm = bridge_fsm(fam);
        let defects = check_fsm(&fsm);
        println!(
            "  {fam}-CXL: {} states, {} rows, {} defects",
            fsm.states.len(),
            fsm.rows.len(),
            defects.len()
        );
        ok &= defects.is_empty();
        let fsm = baseline_fsm(fam, ProtocolFamily::Mesi);
        let defects = check_fsm(&fsm);
        println!(
            "  {fam}-MESI (baseline): {} states, {} rows, {} defects",
            fsm.states.len(),
            fsm.rows.len(),
            defects.len()
        );
        ok &= defects.is_empty();
    }

    println!("\n== Explicit-state exploration (Murphi-style) ==");
    let mut run = |label: &str, cfg: ModelConfig, expect_violation: bool| {
        let result = check(&cfg);
        let verdict = match (&result.violation, expect_violation) {
            (None, false) => "OK (no violation)",
            (Some(_), true) => "OK (violation found, as designed)",
            (None, true) => {
                ok = false;
                "FAIL (expected a violation)"
            }
            (Some(_), false) => {
                ok = false;
                "FAIL (unexpected violation)"
            }
        };
        println!("  {label:<46} {:>9} states  {verdict}", result.states);
        if let Some(v) = result.violation {
            println!("      -> {v}");
        }
    };

    run("rules on, 2 ops/core", ModelConfig::default(), false);
    run(
        "rules on, 3 ops/core",
        ModelConfig {
            ops_per_core: 3,
            ..ModelConfig::default()
        },
        false,
    );
    if big {
        run(
            "rules on, 2 cores in cluster 0",
            ModelConfig {
                second_core: true,
                ..ModelConfig::default()
            },
            false,
        );
    }
    run(
        "Rule II (nesting) disabled   -> Fig. 4 race",
        ModelConfig {
            rule2_nesting: false,
            ..ModelConfig::default()
        },
        true,
    );
    run(
        "BIConflict handshake disabled -> Fig. 2 race",
        ModelConfig {
            conflict_handshake: false,
            ..ModelConfig::default()
        },
        true,
    );

    if ok {
        println!("\nAll verification checks PASSED.");
    } else {
        println!("\nVERIFICATION FAILURES!");
        std::process::exit(1);
    }
}
