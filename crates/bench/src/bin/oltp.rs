//! OLTP/KV sweep: Zipfian skew × cluster count × protocol family over a
//! 2²⁰-key (≥10⁶ distinct hot cachelines) transaction engine.
//!
//! This is the region-store's design-point workload: the coherence
//! directories see a keyspace far larger than the set of lines that is
//! ever non-quiescent at once, so per-line state must be *materialized on
//! demand and demoted back to summaries* or the directories' memory
//! footprint scales with the keyspace instead of the concurrency. Each
//! cell reports committed-transaction throughput, merged L1 access-latency
//! percentiles (p50/p95/p99), and the coherence-state footprint
//! (touched vs peak-resident lines, peak state bytes) from the opt-in
//! `state_metrics` report keys.
//!
//! Usage: `cargo run --release -p c3-bench --bin oltp
//! [-- --quick] [--threads N] [--ops N] [--json PATH]`

use c3::system::GlobalProtocol;
use c3_bench::runner::{self, json_escape};
use c3_bench::{run_workload_with, RunConfig};
use c3_memsys::{AccessKind, L1Controller};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_sim::stats::LatencyHistogram;
use c3_workloads::{OltpTxnCounts, WorkloadSpec};

/// One sweep cell.
struct Cell {
    tag: String,
    spec: WorkloadSpec,
    cfg: RunConfig,
}

/// Everything measured from one cell.
struct CellResult {
    exec_ns: u64,
    events: u64,
    txns: OltpTxnCounts,
    hist: LatencyHistogram,
    touched: f64,
    peak_resident: f64,
    peak_state_bytes: f64,
}

fn run_cell(cell: &Cell) -> CellResult {
    let (result, hist) = run_workload_with(&cell.spec, &cell.cfg, |sim, handles| {
        // Merge every L1's per-kind latency histogram into one
        // distribution: OLTP transactions mix loads, stores and RMWs,
        // so the headline percentiles cover all three.
        let mut hist = LatencyHistogram::new();
        for &id in handles.l1s.iter().flatten() {
            let l1 = sim.component_as::<L1Controller>(id).expect("L1 controller");
            for kind in [AccessKind::Load, AccessKind::Store, AccessKind::Rmw] {
                hist.merge(&l1.stats(kind).hist);
            }
        }
        hist
    });
    // Deterministic committed-transaction counts: regenerate each
    // thread's stream (cheap next to the simulation itself).
    let nthreads = cell.cfg.cores_per_cluster * cell.cfg.clusters;
    let mut txns = OltpTxnCounts::default();
    for t in 0..nthreads {
        txns.merge(
            cell.spec
                .oltp_txns(t, nthreads, cell.cfg.ops_per_core, cell.cfg.seed),
        );
    }
    // Footprint attribution from the opt-in report keys: the
    // directory tiers emit `touched_lines`/`peak_resident_lines`, and
    // every region store (dirs + L1 MSHR tables) emits
    // `peak_state_bytes`.
    let sum_suffix = |suffix: &str| {
        result
            .report
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| v)
            .sum::<f64>()
    };
    CellResult {
        exec_ns: result.exec_ns,
        events: result.report.get("sim.events").unwrap_or(0.0) as u64,
        txns,
        hist,
        touched: sum_suffix(".touched_lines"),
        peak_resident: sum_suffix(".peak_resident_lines"),
        peak_state_bytes: sum_suffix(".peak_state_bytes"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut threads = runner::default_threads();
    let mut ops: Option<usize> = None;
    let mut json: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--threads" => {
                threads = args[i + 1].parse().expect("threads");
                i += 2;
            }
            "--ops" => {
                ops = Some(args[i + 1].parse().expect("ops"));
                i += 2;
            }
            "--json" => {
                json = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown arg {other}"),
        }
    }

    // Full sweep: the 2²⁰-key engine (≥10⁶ distinct hot lines) across
    // YCSB-style skews, two topology scales and both host families.
    // Quick: the 2¹⁴-key smoke variant, skew endpoints, MESI only —
    // the shape CI and the perf gate run.
    let (base, skews, cluster_counts, families, default_ops): (
        WorkloadSpec,
        &[f64],
        &[usize],
        &[ProtocolFamily],
        usize,
    ) = if quick {
        (
            WorkloadSpec::by_name("oltp-quick").expect("spec"),
            &[0.0, 0.99],
            &[2],
            &[ProtocolFamily::Mesi],
            300,
        )
    } else {
        (
            WorkloadSpec::by_name("oltp-zipf").expect("spec"),
            &[0.0, 0.5, 0.8, 0.99],
            &[2, 4],
            &[ProtocolFamily::Mesi, ProtocolFamily::Moesi],
            4000,
        )
    };
    let ops = ops.unwrap_or(default_ops);

    let mut cells = Vec::new();
    for &skew in skews {
        for &clusters in cluster_counts {
            for &family in families {
                let mut spec = base;
                spec.zipf_skew = skew;
                let mut cfg = RunConfig::scaled(
                    (family, family),
                    GlobalProtocol::Cxl,
                    (Mcm::Weak, Mcm::Weak),
                )
                .with_clusters(clusters)
                .with_state_metrics();
                cfg.ops_per_core = ops;
                cells.push(Cell {
                    tag: format!("skew{skew}/c{clusters}/{}", cfg.label()),
                    spec,
                    cfg,
                });
            }
        }
    }

    let results = runner::run_indexed(threads, &cells, |_, c| run_cell(c));

    println!(
        "OLTP/KV sweep: {} keys/cell, {} ops/core ({} cells on {} threads)",
        base.hot_lines,
        ops,
        cells.len(),
        threads,
    );
    println!(
        "{:<32} {:>8} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10} {:>6}",
        "cell",
        "txns",
        "ktxn/s",
        "p50(ns)",
        "p95(ns)",
        "p99(ns)",
        "touched",
        "peak-res",
        "peakKB",
        "res%",
    );
    for (cell, r) in cells.iter().zip(&results) {
        let ktps = r.txns.total() as f64 / r.exec_ns as f64 * 1e6;
        let resident_pct = if r.touched > 0.0 {
            100.0 * r.peak_resident / r.touched
        } else {
            0.0
        };
        println!(
            "{:<32} {:>8} {:>9.1} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10.1} {:>5.1}%",
            cell.tag,
            r.txns.total(),
            ktps,
            r.hist.percentile(0.50).as_ns(),
            r.hist.percentile(0.95).as_ns(),
            r.hist.percentile(0.99).as_ns(),
            r.touched as u64,
            r.peak_resident as u64,
            r.peak_state_bytes / 1024.0,
            resident_pct,
        );
    }
    println!(
        "\n(touched = distinct directory lines ever seen; peak-res = most ever \
         materialized at once; res% is the materialization ratio the region \
         store keeps low)"
    );

    if let Some(path) = json {
        let mut out = String::from("{\n  \"cells\": [\n");
        for (i, (cell, r)) in cells.iter().zip(&results).enumerate() {
            out.push_str(&format!(
                "    {{\"tag\":\"{}\",\"skew\":{},\"clusters\":{},\"config\":\"{}\",\
                 \"keys\":{},\"ops_per_core\":{},\"seed\":{},\"exec_ns\":{},\
                 \"events\":{},\"txns\":{},\"updates\":{},\"reads\":{},\
                 \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
                 \"touched_lines\":{},\"peak_resident_lines\":{},\
                 \"peak_state_bytes\":{}}}{}\n",
                json_escape(&cell.tag),
                cell.spec.zipf_skew,
                cell.cfg.clusters,
                json_escape(&cell.cfg.label()),
                cell.spec.hot_lines,
                cell.cfg.ops_per_core,
                cell.cfg.seed,
                r.exec_ns,
                r.events,
                r.txns.total(),
                r.txns.updates,
                r.txns.reads,
                r.hist.percentile(0.50).as_ns(),
                r.hist.percentile(0.95).as_ns(),
                r.hist.percentile(0.99).as_ns(),
                r.touched as u64,
                r.peak_resident as u64,
                r.peak_state_bytes as u64,
                if i + 1 < cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json");
        println!("(wrote {path})");
    }
}
