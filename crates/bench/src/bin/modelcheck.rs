//! `modelcheck` — symmetry-reduced exhaustive exploration of the
//! resilient protocol model.
//!
//! Drives `c3-verif::resilient` over a battery of cluster × address
//! configurations, printing per-config canonical/unreduced state counts,
//! edge counts and the symmetry reduction factor. Every clean run also
//! cross-checks the `(controller, state, event)` witnesses the explorer
//! collected against the declarative PR-5 transition tables
//! (`check_model_conformance`), so the abstract model and the concrete
//! controllers cannot silently drift apart.
//!
//! ```text
//! cargo run --release -p c3-bench --bin modelcheck            # fast battery
//! cargo run --release -p c3-bench --bin modelcheck -- --deep  # 3x2 ops=2 headline
//! cargo run --release -p c3-bench --bin modelcheck -- --config 3x2 --ops 2 --faults 1
//! cargo run --release -p c3-bench --bin modelcheck -- --inject lost-grant-livelock
//! cargo run --release -p c3-bench --bin modelcheck -- --self-test
//! ```
//!
//! Exit codes: `0` clean (or the injected bug was caught, under
//! `--inject`/`--self-test`), `1` an invariant violation was found (or
//! an injected bug was *missed*, or a witness diverged from the tables),
//! `2` bad usage.

use c3::bridge::bridge_transition_table;
use c3_cxl::dcoh::dcoh_transition_table;
use c3_protocol::states::ProtocolFamily;
use c3_verif::resilient::{check_resilient, Injection, RViolation, ResilientConfig};
use c3_verif::static_checks::check_model_conformance;

/// The default fast battery: every topology up to 3 hosts × 2 addresses
/// with one operation per cluster and one fault budget. Completes in
/// well under a second in release builds.
const BATTERY: [(usize, usize); 4] = [(2, 1), (2, 2), (3, 1), (3, 2)];

struct Args {
    config: Option<(usize, usize)>,
    ops: Option<u8>,
    faults: Option<u8>,
    retries: Option<u8>,
    max_states: Option<usize>,
    no_symmetry: bool,
    spill: Option<String>,
    inject: Option<Injection>,
    self_test: bool,
    deep: bool,
    min_reduction: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: modelcheck [--config CxA] [--ops N] [--faults N] [--retries N]\n\
         \x20                 [--max-states N] [--no-symmetry] [--spill PATH]\n\
         \x20                 [--min-reduction F] [--deep]\n\
         \x20                 [--inject lost-grant-livelock|poison-launder] [--self-test]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        config: None,
        ops: None,
        faults: None,
        retries: None,
        max_states: None,
        no_symmetry: false,
        spill: None,
        inject: None,
        self_test: false,
        deep: false,
        min_reduction: None,
    };
    let mut args = std::env::args().skip(1);
    fn next_val(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("modelcheck: {flag} needs a value");
            usage();
        })
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--config" => {
                let v = next_val(&mut args, "--config");
                let Some((c, n)) = v.split_once('x') else {
                    eprintln!("modelcheck: --config wants CLUSTERSxADDRS, e.g. 3x2");
                    usage();
                };
                match (c.parse(), n.parse()) {
                    (Ok(c), Ok(n)) => out.config = Some((c, n)),
                    _ => {
                        eprintln!("modelcheck: bad --config {v:?}");
                        usage();
                    }
                }
            }
            "--ops" => {
                out.ops = next_val(&mut args, "--ops")
                    .parse()
                    .ok()
                    .or_else(|| usage())
            }
            "--faults" => {
                out.faults = next_val(&mut args, "--faults")
                    .parse()
                    .ok()
                    .or_else(|| usage())
            }
            "--retries" => {
                out.retries = next_val(&mut args, "--retries")
                    .parse()
                    .ok()
                    .or_else(|| usage())
            }
            "--max-states" => {
                out.max_states = next_val(&mut args, "--max-states")
                    .parse()
                    .ok()
                    .or_else(|| usage())
            }
            "--min-reduction" => {
                out.min_reduction = next_val(&mut args, "--min-reduction")
                    .parse()
                    .ok()
                    .or_else(|| usage())
            }
            "--no-symmetry" => out.no_symmetry = true,
            "--spill" => out.spill = Some(next_val(&mut args, "--spill")),
            "--inject" => {
                let v = next_val(&mut args, "--inject");
                out.inject = Some(Injection::parse(&v).unwrap_or_else(|| {
                    eprintln!("modelcheck: unknown injection {v:?}");
                    eprintln!("  (expected lost-grant-livelock or poison-launder)");
                    std::process::exit(2);
                }));
            }
            "--self-test" => out.self_test = true,
            "--deep" => out.deep = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("modelcheck: unknown argument {other:?}");
                usage();
            }
        }
    }
    out
}

/// The invariant class each seeded bug must trip.
fn expected_violation(inj: Injection) -> &'static str {
    match inj {
        Injection::LostGrantLivelock => "deadlock",
        Injection::PoisonLaunder => "poison",
    }
}

fn violation_class(v: &RViolation) -> &'static str {
    match v {
        RViolation::Swmr(_) => "swmr",
        RViolation::Stale(_) => "stale",
        RViolation::Divergence(_) => "divergence",
        RViolation::Poison(_) => "poison",
        RViolation::Deadlock(_) => "deadlock",
    }
}

fn build_config(args: &Args, clusters: usize, addrs: usize) -> ResilientConfig {
    let mut cfg = ResilientConfig {
        clusters,
        addrs,
        ..ResilientConfig::default()
    };
    if let Some(o) = args.ops {
        cfg.ops_per_cluster = o;
    }
    if let Some(f) = args.faults {
        cfg.max_faults = f;
        cfg.max_retries = cfg.max_retries.max(f);
    }
    if let Some(r) = args.retries {
        cfg.max_retries = r;
    }
    if let Some(m) = args.max_states {
        cfg.max_states = m;
    }
    cfg.symmetry = !args.no_symmetry;
    cfg.spill_path = args.spill.clone().map(std::path::PathBuf::from);
    cfg.inject = args.inject;
    cfg
}

/// Run one configuration; returns `true` if the run is acceptable (no
/// unexpected violation, no conformance divergence, injected bugs
/// caught).
fn run_one(cfg: &ResilientConfig, min_reduction: Option<f64>) -> bool {
    let label = format!(
        "{}x{} ops={} faults={} retries={}{}{}",
        cfg.clusters,
        cfg.addrs,
        cfg.ops_per_cluster,
        cfg.max_faults,
        cfg.max_retries,
        if cfg.symmetry { "" } else { " no-symmetry" },
        match cfg.inject {
            Some(i) => format!(" inject={}", i.name()),
            None => String::new(),
        }
    );
    let t0 = std::time::Instant::now();
    let r = check_resilient(cfg);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{label}: {} canonical / {} unreduced states, {} edges, \
         reduction {:.2}x (group order {}), {:.2}s{}",
        r.canonical_states,
        r.unreduced_states,
        r.edges,
        r.reduction_factor,
        r.group_order,
        secs,
        if r.spilled > 0 {
            format!(" [{} frontier records spilled]", r.spilled)
        } else {
            String::new()
        }
    );
    if r.truncated {
        println!(
            "  WARNING: truncated at max-states={} — not exhaustive",
            cfg.max_states
        );
    }

    match (&r.violation, cfg.inject) {
        (None, None) => {
            // Clean exhaustive run: cross-check the model's witnesses
            // against the concrete controllers' declarative tables.
            let dcoh = dcoh_transition_table();
            let bridge = bridge_transition_table(ProtocolFamily::Mesi);
            let defects = check_model_conformance(&r.witnesses, &[&dcoh, &bridge]);
            if defects.is_empty() {
                println!(
                    "  clean; {} table witnesses conform to the dcoh+bridge tables",
                    r.witnesses.len()
                );
                if let Some(min) = min_reduction {
                    if cfg.symmetry && r.reduction_factor < min {
                        println!(
                            "  FAIL: reduction factor {:.2}x below required {min:.2}x",
                            r.reduction_factor
                        );
                        return false;
                    }
                }
                true
            } else {
                for d in &defects {
                    println!("  model/table divergence: {d}");
                }
                false
            }
        }
        (None, Some(inj)) => {
            println!(
                "  FAIL: injected bug {:?} was NOT caught (expected a {} violation)",
                inj.name(),
                expected_violation(inj)
            );
            false
        }
        (Some((v, cex)), maybe_inj) => {
            println!("  VIOLATION: {v}");
            println!("  counterexample ({} steps):", cex.steps.len());
            for (comp, desc) in &cex.steps {
                println!("    [{comp}] {desc}");
            }
            println!("  trace replay:");
            for line in cex.trace.lines() {
                println!("    {line}");
            }
            match maybe_inj {
                Some(inj) if violation_class(v) == expected_violation(inj) => {
                    println!("  OK: injected bug {:?} caught as expected", inj.name());
                    true
                }
                Some(inj) => {
                    println!(
                        "  FAIL: injected bug {:?} tripped {} (expected {})",
                        inj.name(),
                        violation_class(v),
                        expected_violation(inj)
                    );
                    false
                }
                None => false,
            }
        }
    }
}

fn main() {
    let args = parse_args();

    if args.self_test {
        // Both seeded protocol bugs must be detected on a small config;
        // CI runs this so a checker regression cannot hide behind
        // all-clean output.
        let mut ok = true;
        for inj in Injection::ALL {
            let mut cfg = build_config(&args, 2, 1);
            cfg.inject = Some(inj);
            ok &= run_one(&cfg, None);
        }
        println!(
            "modelcheck self-test: {}",
            if ok {
                "both injections caught"
            } else {
                "FAILED"
            }
        );
        std::process::exit(if ok { 0 } else { 1 });
    }

    let configs: Vec<(usize, usize)> = match args.config {
        Some(ca) => vec![ca],
        None => BATTERY.to_vec(),
    };

    let mut ok = true;
    for (clusters, addrs) in &configs {
        let cfg = build_config(&args, *clusters, *addrs);
        ok &= run_one(&cfg, args.min_reduction);
    }
    if args.deep {
        // The headline exhaustive run: 3 hosts × 2 addresses with two
        // operations per cluster under a one-fault budget. ~18M
        // unreduced states, explored via ~1.5M canonical
        // representatives in well under a minute in release builds.
        let mut cfg = build_config(&args, 3, 2);
        cfg.ops_per_cluster = args.ops.unwrap_or(2);
        ok &= run_one(&cfg, args.min_reduction);
    }
    if ok {
        println!("modelcheck: all configurations acceptable");
    }
    std::process::exit(if ok { 0 } else { 1 });
}
