//! Diagnostic: dump key counters for one workload under baseline vs CXL.
//! Usage: `cargo run --release -p c3-bench --bin probe -- <workload> [ops]`

use c3::system::GlobalProtocol;
use c3_bench::{run_workload, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("vips");
    let ops: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(500);
    let spec = WorkloadSpec::by_name(name).expect("workload");
    for global in [
        GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
    ] {
        let mut cfg = RunConfig::scaled(
            (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
            global,
            (Mcm::Weak, Mcm::Weak),
        );
        cfg.ops_per_core = ops;
        let r = run_workload(&spec, &cfg);
        println!("== {name} under {global:?}: exec {} ns", r.exec_ns);
        let interesting = [
            "bridge.global_reads",
            "bridge.global_writes",
            "bridge.snoops",
            "bridge.conflicts",
            "bridge.evictions",
            "bridge.recalls",
            "bridge.local_stalls",
            "dcoh.stalled_requests",
            "dcoh.bisnp_sent",
            "dcoh.conflicts",
            "dcoh.writebacks",
            "dir.stalled_requests",
        ];
        for (k, v) in r.report.iter() {
            if interesting.iter().any(|s| k.contains(s)) && v > 0.0 {
                println!("  {k} = {v}");
            }
        }
        let mut hits = 0.0;
        let mut misses = 0.0;
        let mut high = 0.0;
        let mut med = 0.0;
        let mut low = 0.0;
        for (k, v) in r.report.iter() {
            if k.ends_with(".hits") {
                hits += v;
            }
            if k.ends_with(".misses") {
                misses += v;
            }
            if k.contains("miss_ns.high") {
                high += v;
            }
            if k.contains("miss_ns.med") {
                med += v;
            }
            if k.contains("miss_ns.low") {
                low += v;
            }
        }
        println!("  hits={hits} misses={misses} miss_ns: low={low} med={med} high={high}");
    }
}
