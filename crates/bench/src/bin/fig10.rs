//! Figure 10: execution time of all 33 workloads under the four protocol
//! combinations, normalized to the MESI-MESI-MESI baseline.
//!
//! Paper result: the CXL combinations (MESI-CXL-MESI, MESI-CXL-MOESI,
//! MESI-CXL-MESIF) are consistently slower than the hierarchical MESI
//! baseline — avg ≈ 5.5 % (ranges ≈ 4–29 %), with the contended
//! workloads (histogram, barnes, lu-ncont) most affected and streaming
//! workloads (vips) barely affected.
//!
//! The 33 × 4 grid runs in parallel on the shared runner; the table is
//! identical for any thread count.
//!
//! Usage: `cargo run --release -p c3-bench --bin fig10 [-- --ops N]
//! [--workloads a,b,c] [--csv PATH] [--json PATH] [--threads N]`

use c3::system::GlobalProtocol;
use c3_bench::runner::{self, Experiment};
use c3_bench::{geomean, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::{Suite, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut ops = 1500usize;
    let mut filter: Option<Vec<String>> = None;
    let mut csv: Option<String> = None;
    let mut json: Option<String> = None;
    let mut threads = runner::default_threads();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                ops = args[i + 1].parse().expect("ops");
                i += 2;
            }
            "--workloads" => {
                filter = Some(args[i + 1].split(',').map(|s| s.to_string()).collect());
                i += 2;
            }
            "--csv" => {
                csv = Some(args[i + 1].clone());
                i += 2;
            }
            "--json" => {
                json = Some(args[i + 1].clone());
                i += 2;
            }
            "--threads" => {
                threads = args[i + 1].parse().expect("threads");
                i += 2;
            }
            other => panic!("unknown arg {other}"),
        }
    }
    let mut csv_rows =
        vec!["workload,suite,base_ns,mesi_cxl_mesi,mesi_cxl_moesi,mesi_cxl_mesif".to_string()];

    let configs: Vec<(&str, RunConfig)> = vec![
        (
            "MESI-MESI-MESI",
            RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
                (Mcm::Weak, Mcm::Weak),
            ),
        ),
        (
            "MESI-CXL-MESI",
            RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                GlobalProtocol::Cxl,
                (Mcm::Weak, Mcm::Weak),
            ),
        ),
        (
            "MESI-CXL-MOESI",
            RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
                GlobalProtocol::Cxl,
                (Mcm::Weak, Mcm::Weak),
            ),
        ),
        (
            "MESI-CXL-MESIF",
            RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesif),
                GlobalProtocol::Cxl,
                (Mcm::Weak, Mcm::Weak),
            ),
        ),
    ];

    let specs: Vec<WorkloadSpec> = WorkloadSpec::all()
        .into_iter()
        .filter(|spec| {
            filter
                .as_ref()
                .map(|f| f.iter().any(|n| n == spec.name))
                .unwrap_or(true)
        })
        .collect();

    // Row-major grid: results[4*w + c] is workload w under config c.
    let mut grid = Vec::new();
    for spec in &specs {
        for (_, cfg) in &configs {
            let mut cfg = *cfg;
            cfg.ops_per_core = ops;
            grid.push(Experiment::new(*spec, cfg));
        }
    }
    let results = runner::run_grid(threads, &grid);

    println!("Figure 10: normalized execution time (baseline MESI-MESI-MESI = 1.00)");
    println!(
        "{:<18} {:>8} {:>15} {:>15} {:>15}",
        "workload", "base(us)", "MESI-CXL-MESI", "MESI-CXL-MOESI", "MESI-CXL-MESIF"
    );

    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut per_suite: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; 3];

    for (w, spec) in specs.iter().enumerate() {
        let times: Vec<f64> = (0..4)
            .map(|c| {
                results[4 * w + c]
                    .expect_completed(&grid[4 * w + c].tag)
                    .exec_ns as f64
            })
            .collect();
        let base = times[0];
        let norm: Vec<f64> = times.iter().map(|t| t / base).collect();
        println!(
            "{:<18} {:>8.1} {:>15.3} {:>15.3} {:>15.3}",
            spec.name,
            base / 1000.0,
            norm[1],
            norm[2],
            norm[3]
        );
        csv_rows.push(format!(
            "{},{},{},{:.4},{:.4},{:.4}",
            spec.name,
            spec.suite.label(),
            base,
            norm[1],
            norm[2],
            norm[3]
        ));
        let suite_idx = match spec.suite {
            Suite::Splash4 => 0,
            Suite::Parsec => 1,
            Suite::Phoenix => 2,
            Suite::Oltp => unreachable!("fig10 runs the 33 paper workloads"),
        };
        for k in 0..3 {
            per_config[k].push(norm[k + 1]);
            per_suite[suite_idx][k].push(norm[k + 1]);
        }
    }

    if let Some(path) = csv {
        std::fs::write(&path, csv_rows.join("\n") + "\n").expect("write csv");
        println!("\n(wrote {path})");
    }
    if let Some(path) = json {
        std::fs::write(&path, runner::grid_json(&grid, &results, true)).expect("write json");
        println!("\n(wrote {path})");
    }
    println!("\nPer-suite geomean (normalized):");
    for (si, name) in ["splash4", "parsec", "phoenix"].iter().enumerate() {
        if per_suite[si][0].is_empty() {
            continue;
        }
        println!(
            "{:<18} {:>8} {:>15.3} {:>15.3} {:>15.3}",
            name,
            "",
            geomean(&per_suite[si][0]),
            geomean(&per_suite[si][1]),
            geomean(&per_suite[si][2])
        );
    }
    if !per_config[0].is_empty() {
        let max = |v: &Vec<f64>| v.iter().cloned().fold(f64::MIN, f64::max);
        println!("\nMean slowdown vs baseline:");
        println!(
            "  MESI-CXL-MESI : avg {:+.1}%  max {:+.1}%   (paper: avg +5.5%, range 4.0-26.6%)",
            (geomean(&per_config[0]) - 1.0) * 100.0,
            (max(&per_config[0]) - 1.0) * 100.0
        );
        println!(
            "  MESI-CXL-MOESI: avg {:+.1}%  max {:+.1}%   (paper: avg +5.7%, range 3.9-28.6%)",
            (geomean(&per_config[1]) - 1.0) * 100.0,
            (max(&per_config[1]) - 1.0) * 100.0
        );
        println!(
            "  MESI-CXL-MESIF: avg {:+.1}%  max {:+.1}%   (paper: avg +5.5%, range 4.0-29.4%)",
            (geomean(&per_config[2]) - 1.0) * 100.0,
            (max(&per_config[2]) - 1.0) * 100.0
        );
    }
}
