//! Figure 11: breakdown of total miss cycles by request latency band and
//! instruction type, comparing MESI-MESI-MESI and MESI-CXL-MESI on the
//! paper's selected workloads (histogram, barnes, lu-ncont — the most
//! impacted — and vips, the least).
//!
//! Paper result: affected workloads see only the *high* band
//! (cross-cluster coherence, > 400 ns) grow — by ≈ 2.9× — for loads,
//! stores and RMWs alike, while the medium band (CXL memory access) stays
//! flat; vips is insensitive. Miss *counts* stay the same: CXL makes each
//! cross-cluster transaction costlier, it does not add misses.
//!
//! The 4 × 2 grid runs in parallel on the shared runner; the tables are
//! identical for any thread count.
//!
//! Usage: `cargo run --release -p c3-bench --bin fig11 [-- --ops N]
//! [--threads N]`

use c3::system::GlobalProtocol;
use c3_bench::runner::{self, Experiment};
use c3_bench::{miss_breakdown, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut ops = 1500usize;
    let mut threads = runner::default_threads();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                ops = args[i + 1].parse().expect("ops");
                i += 2;
            }
            "--threads" => {
                threads = args[i + 1].parse().expect("threads");
                i += 2;
            }
            other => panic!("unknown arg {other}"),
        }
    }
    let workloads = ["histogram", "barnes", "lu-ncont", "vips"];
    let globals = [
        GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
    ];

    // Row-major grid: results[2*w + g] is workload w under global g.
    let mut grid = Vec::new();
    for name in workloads {
        let spec = WorkloadSpec::by_name(name).expect("workload");
        for global in globals {
            let mut cfg = RunConfig::scaled(
                (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
                global,
                (Mcm::Weak, Mcm::Weak),
            );
            cfg.ops_per_core = ops;
            grid.push(Experiment::new(spec, cfg));
        }
    }
    let results = runner::run_grid(threads, &grid);

    println!("Figure 11: total miss cycles (us) by latency band and instruction type");
    for (w, name) in workloads.iter().enumerate() {
        let mut rows = Vec::new();
        let mut execs = Vec::new();
        let mut misses = Vec::new();
        for g in 0..2 {
            let r = results[2 * w + g].expect_completed(&grid[2 * w + g].tag);
            rows.push(miss_breakdown(&r.report));
            execs.push(r.exec_ns);
            let mut m = 0.0;
            for (k, v) in r.report.iter() {
                if k.ends_with(".misses") {
                    m += v;
                }
            }
            misses.push(m);
        }
        println!(
            "\n== {name} ==   exec: base {:.1} us, CXL {:.1} us ({:+.1}%)",
            execs[0] as f64 / 1000.0,
            execs[1] as f64 / 1000.0,
            (execs[1] as f64 / execs[0] as f64 - 1.0) * 100.0
        );
        println!(
            "   misses: base {} vs CXL {} (counts should match)",
            misses[0], misses[1]
        );
        println!(
            "   {:<22} {:>14} {:>14} {:>8}",
            "band", "MESI-MESI-MESI", "MESI-CXL-MESI", "ratio"
        );
        let mut high = (0.0, 0.0);
        for (i, (label, base)) in rows[0].iter().enumerate() {
            let cxl = rows[1][i].1;
            if *base == 0.0 && cxl == 0.0 {
                continue;
            }
            let ratio = if *base > 0.0 {
                cxl / base
            } else {
                f64::INFINITY
            };
            println!(
                "   {:<22} {:>14.1} {:>14.1} {:>8.2}",
                label,
                base / 1000.0,
                cxl / 1000.0,
                ratio
            );
            if label.contains("high") {
                high.0 += base;
                high.1 += cxl;
            }
        }
        if high.0 > 0.0 {
            println!(
                "   high-band total ratio: {:.2}x   (paper: ~2.9x for affected workloads)",
                high.1 / high.0
            );
        }
    }
}
