//! `protocheck` — offline static analysis of the concrete controllers'
//! transition tables.
//!
//! Builds the declarative [`TransitionTable`]s exported by the L1
//! (`c3-memsys::l1`), the C³ bridge (`c3::bridge`) and the DCOH
//! (`c3-cxl::dcoh`) for every host protocol family, and runs the
//! `c3-verif::static_checks` suite over them: validation, completeness,
//! reachability, forbidden states, response-sink, Rule-II discipline and
//! cross-controller static deadlock analysis. The generated compound
//! FSMs are checked with `c3-verif::fsm_checks` alongside.
//!
//! Prints every defect with its row provenance and exits nonzero if any
//! is found — CI runs it next to the chaos and perf-smoke jobs.
//!
//! ```text
//! cargo run --release --bin protocheck
//! cargo run --release --bin protocheck -- --inject missing-row
//! ```
//!
//! `--inject missing-row|forbidden-state|cycle` seeds one known defect
//! into an otherwise clean table, as a self-test that the checker
//! actually catches each defect class.

use c3::bridge::bridge_transition_table;
use c3::generator::{baseline_fsm, bridge_fsm};
use c3_cxl::dcoh::dcoh_transition_table;
use c3_memsys::l1::l1_transition_table;
use c3_protocol::states::ProtocolFamily;
use c3_protocol::table::{TransitionRow, TransitionTable};
use c3_verif::fsm_checks::check_fsm;
use c3_verif::static_checks::check_all;

const FAMILIES: [ProtocolFamily; 4] = [
    ProtocolFamily::Mesi,
    ProtocolFamily::Mesif,
    ProtocolFamily::Moesi,
    ProtocolFamily::Rcc,
];

/// A known defect seeded into one table, to prove the checker sees it.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Inject {
    /// Delete the L1 MESI `(IS_D, Data)` row.
    MissingRow,
    /// Declare the L1 MESI `M` state forbidden.
    ForbiddenState,
    /// Replace the bridge MESI `(Wb, Cmp)` rows with a stall waiting on
    /// `Cmp` itself — an unreleasable self-cycle.
    Cycle,
}

fn apply_injection(inject: Inject, l1: &mut TransitionTable, bridge: &mut TransitionTable) {
    match inject {
        Inject::MissingRow => {
            // Drop the (IS_D, Data) row *and* the wildcard Data row, so
            // the pair is genuinely uncovered (not silently absorbed by
            // the wildcard) — the checker must name the hole.
            l1.rows
                .retain(|r| !(r.event == "Data" && (r.state == "IS_D" || r.state == "*")));
        }
        Inject::ForbiddenState => {
            l1.forbidden.push("M");
        }
        Inject::Cycle => {
            bridge
                .rows
                .retain(|r| !(r.state == "Wb" && r.event == "Cmp"));
            bridge.rows.push(TransitionRow::stall(
                "Wb",
                "Cmp",
                vec!["Cmp"],
                "protocheck --inject cycle",
            ));
        }
    }
}

fn main() {
    let mut inject = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--inject" => {
                let kind = args.next().unwrap_or_default();
                inject = Some(match kind.as_str() {
                    "missing-row" => Inject::MissingRow,
                    "forbidden-state" => Inject::ForbiddenState,
                    "cycle" => Inject::Cycle,
                    other => {
                        eprintln!("protocheck: unknown injection {other:?}");
                        eprintln!("  (expected missing-row, forbidden-state or cycle)");
                        std::process::exit(2);
                    }
                });
            }
            "--help" | "-h" => {
                println!("usage: protocheck [--inject missing-row|forbidden-state|cycle]");
                return;
            }
            other => {
                eprintln!("protocheck: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut total_defects = 0usize;
    let mut tables_checked = 0usize;

    for fam in FAMILIES {
        let mut l1 = l1_transition_table(fam);
        let mut bridge = bridge_transition_table(fam);
        let dcoh = dcoh_transition_table();
        if fam == ProtocolFamily::Mesi {
            if let Some(inj) = inject {
                apply_injection(inj, &mut l1, &mut bridge);
            }
        }
        let set = [&l1, &bridge, &dcoh];
        let defects = check_all(&set);
        tables_checked += set.len();
        let rows: usize = set.iter().map(|t| t.rows.len()).sum();
        if defects.is_empty() {
            println!("{fam}: l1+bridge+dcoh tables clean ({rows} rows)");
        } else {
            println!("{fam}: {} defect(s) in {rows} rows:", defects.len());
            for d in &defects {
                println!("  {d}");
            }
            total_defects += defects.len();
        }
    }

    // The generated compound FSMs, for the same families plus the
    // directory-less baselines.
    for fam in FAMILIES {
        let fsm = bridge_fsm(fam);
        let defects = check_fsm(&fsm);
        if !defects.is_empty() {
            println!("{fam} compound FSM: {} defect(s):", defects.len());
            for d in &defects {
                println!("  {d}");
            }
            total_defects += defects.len();
        }
    }
    for fam in [ProtocolFamily::Mesi, ProtocolFamily::Moesi] {
        let fsm = baseline_fsm(fam, ProtocolFamily::Mesi);
        let defects = check_fsm(&fsm);
        if !defects.is_empty() {
            println!("{fam} baseline FSM: {} defect(s):", defects.len());
            for d in &defects {
                println!("  {d}");
            }
            total_defects += defects.len();
        }
    }

    if total_defects == 0 {
        println!("protocheck: {tables_checked} tables + 6 compound FSMs clean");
    } else {
        println!("protocheck: {total_defects} defect(s)");
        std::process::exit(1);
    }
}
