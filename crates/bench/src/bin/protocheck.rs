//! `protocheck` — offline static analysis of the concrete controllers'
//! transition tables.
//!
//! Builds the declarative [`TransitionTable`]s exported by the L1
//! (`c3-memsys::l1`), the C³ bridge (`c3::bridge`) and the DCOH
//! (`c3-cxl::dcoh`) for every host protocol family, and runs the
//! `c3-verif::static_checks` suite over them: validation, completeness,
//! reachability, forbidden states, response-sink, Rule-II discipline and
//! cross-controller static deadlock analysis. The generated compound
//! FSMs are checked with `c3-verif::fsm_checks` alongside.
//!
//! Prints every defect with its row provenance and exits nonzero if any
//! is found — CI runs it next to the chaos and perf-smoke jobs.
//!
//! ```text
//! cargo run --release --bin protocheck
//! cargo run --release --bin protocheck -- --json
//! cargo run --release --bin protocheck -- --inject missing-row
//! ```
//!
//! `--json` switches to a machine-readable report (defect list keyed by
//! stable defect-class slugs plus per-table stats) so CI can diff defect
//! sets instead of grepping text. `--inject
//! missing-row|forbidden-state|cycle` seeds one known defect into an
//! otherwise clean table, as a self-test that the checker actually
//! catches each defect class.

use c3::bridge::bridge_transition_table;
use c3::generator::{baseline_fsm, bridge_fsm};
use c3_bench::runner::json_escape;
use c3_cxl::dcoh::dcoh_transition_table;
use c3_memsys::l1::l1_transition_table;
use c3_protocol::states::ProtocolFamily;
use c3_protocol::table::{TransitionRow, TransitionTable};
use c3_verif::fsm_checks::check_fsm;
use c3_verif::static_checks::check_all;
use c3_verif::StaticDefect;

const FAMILIES: [ProtocolFamily; 4] = [
    ProtocolFamily::Mesi,
    ProtocolFamily::Mesif,
    ProtocolFamily::Moesi,
    ProtocolFamily::Rcc,
];

/// A known defect seeded into one table, to prove the checker sees it.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Inject {
    /// Delete the L1 MESI `(IS_D, Data)` row.
    MissingRow,
    /// Declare the L1 MESI `M` state forbidden.
    ForbiddenState,
    /// Replace the bridge MESI `(Wb, Cmp)` rows with a stall waiting on
    /// `Cmp` itself — an unreleasable self-cycle.
    Cycle,
}

fn apply_injection(inject: Inject, l1: &mut TransitionTable, bridge: &mut TransitionTable) {
    match inject {
        Inject::MissingRow => {
            // Drop the (IS_D, Data) row *and* the wildcard Data row, so
            // the pair is genuinely uncovered (not silently absorbed by
            // the wildcard) — the checker must name the hole.
            l1.rows
                .retain(|r| !(r.event == "Data" && (r.state == "IS_D" || r.state == "*")));
        }
        Inject::ForbiddenState => {
            l1.forbidden.push("M");
        }
        Inject::Cycle => {
            bridge
                .rows
                .retain(|r| !(r.state == "Wb" && r.event == "Cmp"));
            bridge.rows.push(TransitionRow::stall(
                "Wb",
                "Cmp",
                vec!["Cmp"],
                "protocheck --inject cycle",
            ));
        }
    }
}

/// Per-table stats carried into the JSON report.
struct TableStats {
    family: String,
    controller: &'static str,
    states: usize,
    events: usize,
    rows: usize,
}

/// One family's table-check outcome.
struct FamilyResult {
    family: String,
    tables: Vec<TableStats>,
    defects: Vec<StaticDefect>,
}

/// One compound-FSM check outcome (defects pre-rendered).
struct FsmResult {
    name: String,
    defects: Vec<String>,
}

fn main() {
    let mut inject = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--inject" => {
                let kind = args.next().unwrap_or_default();
                inject = Some(match kind.as_str() {
                    "missing-row" => Inject::MissingRow,
                    "forbidden-state" => Inject::ForbiddenState,
                    "cycle" => Inject::Cycle,
                    other => {
                        eprintln!("protocheck: unknown injection {other:?}");
                        eprintln!("  (expected missing-row, forbidden-state or cycle)");
                        std::process::exit(2);
                    }
                });
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: protocheck [--json] [--inject missing-row|forbidden-state|cycle]");
                return;
            }
            other => {
                eprintln!("protocheck: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut families: Vec<FamilyResult> = Vec::new();
    for fam in FAMILIES {
        let mut l1 = l1_transition_table(fam);
        let mut bridge = bridge_transition_table(fam);
        let dcoh = dcoh_transition_table();
        if fam == ProtocolFamily::Mesi {
            if let Some(inj) = inject {
                apply_injection(inj, &mut l1, &mut bridge);
            }
        }
        let set = [&l1, &bridge, &dcoh];
        families.push(FamilyResult {
            family: fam.to_string(),
            tables: set
                .iter()
                .map(|t| TableStats {
                    family: fam.to_string(),
                    controller: t.controller,
                    states: t.states.len(),
                    events: t.events.len(),
                    rows: t.rows.len(),
                })
                .collect(),
            defects: check_all(&set),
        });
    }

    // The generated compound FSMs, for the same families plus the
    // directory-less baselines.
    let mut fsms: Vec<FsmResult> = Vec::new();
    for fam in FAMILIES {
        fsms.push(FsmResult {
            name: format!("{fam} compound FSM"),
            defects: check_fsm(&bridge_fsm(fam))
                .iter()
                .map(|d| d.to_string())
                .collect(),
        });
    }
    for fam in [ProtocolFamily::Mesi, ProtocolFamily::Moesi] {
        fsms.push(FsmResult {
            name: format!("{fam} baseline FSM"),
            defects: check_fsm(&baseline_fsm(fam, ProtocolFamily::Mesi))
                .iter()
                .map(|d| d.to_string())
                .collect(),
        });
    }

    let total_defects: usize = families.iter().map(|f| f.defects.len()).sum::<usize>()
        + fsms.iter().map(|f| f.defects.len()).sum::<usize>();
    let tables_checked: usize = families.iter().map(|f| f.tables.len()).sum();

    if json {
        print_json(&families, &fsms, total_defects);
    } else {
        print_text(&families, &fsms, total_defects, tables_checked, fsms.len());
    }
    if total_defects != 0 {
        std::process::exit(1);
    }
}

fn print_text(
    families: &[FamilyResult],
    fsms: &[FsmResult],
    total_defects: usize,
    tables_checked: usize,
    fsm_count: usize,
) {
    for f in families {
        let rows: usize = f.tables.iter().map(|t| t.rows).sum();
        if f.defects.is_empty() {
            println!("{}: l1+bridge+dcoh tables clean ({rows} rows)", f.family);
        } else {
            println!(
                "{}: {} defect(s) in {rows} rows:",
                f.family,
                f.defects.len()
            );
            for d in &f.defects {
                println!("  {d}");
            }
        }
    }
    for f in fsms {
        if !f.defects.is_empty() {
            println!("{}: {} defect(s):", f.name, f.defects.len());
            for d in &f.defects {
                println!("  {d}");
            }
        }
    }
    if total_defects == 0 {
        println!("protocheck: {tables_checked} tables + {fsm_count} compound FSMs clean");
    } else {
        println!("protocheck: {total_defects} defect(s)");
    }
}

fn print_json(families: &[FamilyResult], fsms: &[FsmResult], total_defects: usize) {
    let mut out = String::from("{\n  \"tables\": [\n");
    let mut first = true;
    for f in families {
        for t in &f.tables {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"family\": \"{}\", \"controller\": \"{}\", \
                 \"states\": {}, \"events\": {}, \"rows\": {}}}",
                json_escape(&t.family),
                json_escape(t.controller),
                t.states,
                t.events,
                t.rows
            ));
        }
    }
    out.push_str("\n  ],\n  \"defects\": [\n");
    first = true;
    for f in families {
        for d in &f.defects {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"family\": \"{}\", \"kind\": \"{}\", \"detail\": \"{}\"}}",
                json_escape(&f.family),
                d.kind(),
                json_escape(d.detail())
            ));
        }
    }
    for f in fsms {
        for d in &f.defects {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"family\": \"{}\", \"kind\": \"fsm\", \"detail\": \"{}\"}}",
                json_escape(&f.name),
                json_escape(d)
            ));
        }
    }
    out.push_str(&format!(
        "\n  ],\n  \"fsms_checked\": {},\n  \"total_defects\": {}\n}}\n",
        fsms.len(),
        total_defects
    ));
    print!("{out}");
}
