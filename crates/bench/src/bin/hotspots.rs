//! The §VI-C1 address-frequency analysis at the memory controller: for
//! CXL-sensitive applications, a few cache lines are hot-spots for both
//! reads and writes *across the two clusters*; insensitive applications
//! show no multi-host hot lines.
//!
//! Usage: `cargo run --release -p c3-bench --bin hotspots [-- workload...]`

use c3::system::GlobalProtocol;
use c3_bench::{run_workload_with, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        vec!["histogram".into(), "barnes".into(), "vips".into()]
    } else {
        args
    };
    for name in names {
        let spec = WorkloadSpec::by_name(&name).expect("workload");
        let cfg = RunConfig::scaled(
            (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
            GlobalProtocol::Cxl,
            (Mcm::Weak, Mcm::Weak),
        );
        let (result, hot) = run_workload_with(&spec, &cfg, |sim, handles| {
            sim.component_as::<c3_cxl::CxlDirectory>(handles.global_dir)
                .expect("dcoh")
                .engine()
                .hottest(8)
        });
        println!("\n== {name} ==  exec {} ns", result.exec_ns);
        println!(
            "   {:<8} {:>8} {:>8} {:>8}",
            "line", "reads", "writes", "hosts"
        );
        for h in hot {
            let marker = if h.sharers > 1 && h.writes > 0 {
                "  <- multi-host hot-spot"
            } else {
                ""
            };
            println!(
                "   {:<8} {:>8} {:>8} {:>8}{marker}",
                h.addr.to_string(),
                h.reads,
                h.writes,
                h.sharers
            );
        }
    }
}
