//! Table IV: litmus test results for every protocol and MCM combination.
//!
//! Runs the seven system-level litmus tests (MP, IRIW, 2+2W, R, S, SB, LB)
//! under MESI-CXL-MESI and MESI-CXL-MOESI with the Arm-Arm, TSO-Arm and
//! TSO-TSO MCM assignments; a ✓ means *no forbidden outcome* (outside the
//! compound-model reference set) was observed across all randomized runs.
//! Also runs the paper's control experiment: with synchronization removed,
//! relaxed outcomes must appear on weak clusters.
//!
//! The 7 × 2 × 3 campaign matrix runs in parallel on the shared runner;
//! every cell is an independent seeded campaign, so the table is
//! identical for any thread count.
//!
//! Usage: `cargo run --release -p c3-bench --bin table4 [-- --runs N]
//! [--threads N]`
//! (the paper uses 100 000 runs per cell; the default here is 400)

use c3::system::GlobalProtocol;
use c3_bench::runner;
use c3_mcm::harness::{reference_allowed, run_litmus, LitmusConfig};
use c3_mcm::litmus::LitmusTest;
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut runs = 400usize;
    let mut threads = runner::default_threads();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                runs = args[i + 1].parse().expect("runs");
                i += 2;
            }
            "--threads" => {
                threads = args[i + 1].parse().expect("threads");
                i += 2;
            }
            other => panic!("unknown arg {other}"),
        }
    }
    let protocol_combos = [
        (
            "MESI-CXL-MESI",
            (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        ),
        (
            "MESI-CXL-MOESI",
            (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
        ),
    ];
    let mcm_combos = [
        ("Arm-Arm", (Mcm::Weak, Mcm::Weak)),
        ("TSO-Arm", (Mcm::Tso, Mcm::Weak)),
        ("TSO-TSO", (Mcm::Tso, Mcm::Tso)),
    ];

    // Row-major campaign matrix: cells[(6*t) + (3*p) + m] is test t under
    // protocol combo p with MCM combo m.
    let tests = LitmusTest::paper_suite();
    let mut cells = Vec::new();
    for test in &tests {
        for (_, protos) in &protocol_combos {
            for (_, mcms) in &mcm_combos {
                cells.push((test.clone(), *protos, *mcms));
            }
        }
    }
    let reports = runner::run_indexed(threads, &cells, |_, (test, protos, mcms)| {
        let cfg = LitmusConfig::new(*protos, GlobalProtocol::Cxl, *mcms).runs(runs);
        run_litmus(test, &cfg)
    });

    println!("Table IV: litmus results ({runs} randomized runs per cell)");
    print!("{:<10}", "Test");
    for (pname, _) in &protocol_combos {
        for (mname, _) in &mcm_combos {
            print!(" {:>9}", format!("{}", mname));
        }
        print!("  | {pname}");
    }
    println!();

    let mut all_passed = true;
    for (t, test) in tests.iter().enumerate() {
        print!("{:<10}", test.name);
        for cell in 0..6 {
            let report = &reports[6 * t + cell];
            let mark = if report.passed() {
                format!("✓({:.0}%)", report.coverage() * 100.0)
            } else {
                all_passed = false;
                "✗".to_string()
            };
            print!(" {mark:>9}");
        }
        println!();
    }
    println!("\n(✓ = no forbidden outcome; percentage = allowed outcomes actually observed)");

    // Control experiment (§VI-A): removing synchronization must expose
    // relaxed outcomes on weak clusters.
    println!("\nControl: synchronization removed (forbidden-under-sync outcomes MUST appear)");
    let control_tests = [LitmusTest::mp(), LitmusTest::sb(), LitmusTest::lb()];
    let controls = runner::run_indexed(threads, &control_tests, |_, test| {
        let cfg = LitmusConfig::new(
            (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
            GlobalProtocol::Cxl,
            (Mcm::Weak, Mcm::Weak),
        )
        .runs(runs.max(400));
        let synced = reference_allowed(test, &cfg);
        let report = run_litmus(&test.without_sync(), &cfg);
        (report.relaxed_observed(&synced), report.passed())
    });
    let mut controls_ok = true;
    for (test, (relaxed, coherent)) in control_tests.iter().zip(&controls) {
        controls_ok &= relaxed & coherent;
        println!(
            "  {:<10} relaxed outcome observed: {}   still coherent: {}",
            test.name,
            if *relaxed { "yes ✓" } else { "NO ✗" },
            if *coherent { "yes ✓" } else { "NO ✗" }
        );
    }

    // Selective fence removal on TSO (§VI-A): store-store order is free.
    let cfg = LitmusConfig::new(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
        (Mcm::Tso, Mcm::Tso),
    )
    .runs(runs.max(400));
    let report = run_litmus(&LitmusTest::mp().without_sync(), &cfg);
    let tso_mp_safe = !report.observed.contains(&vec![1, 0]);
    println!(
        "  MP on TSO without fences: forbidden outcome absent: {}",
        if tso_mp_safe { "yes ✓" } else { "NO ✗" }
    );

    if all_passed && controls_ok && tso_mp_safe {
        println!("\nAll litmus campaigns PASSED.");
    } else {
        println!("\nSOME LITMUS CAMPAIGNS FAILED!");
        std::process::exit(1);
    }
}
