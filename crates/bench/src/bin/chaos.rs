//! `chaos` — fault-injection soak for the resilient C³ stack.
//!
//! Sweeps message-loss (and optionally duplicate / delay / poison) rates
//! on the CXL links of a two-cluster system with timeout/retry enabled,
//! and asserts the recovery invariants the fault model promises:
//!
//! * every run **converges** (`RunOutcome::Completed`, no deadlock);
//! * **zero leaked transactions**: the post-run in-flight capture is empty;
//! * every line that is *not* poison-marked holds exactly the value a
//!   fault-free execution would produce (retries are atomic, Rule II);
//! * the same seed reproduces a bit-identical run, report included.
//!
//! ```text
//! cargo run -p c3-bench --bin chaos                  # default sweep
//! cargo run -p c3-bench --bin chaos -- --seed 9 --iters 40
//! cargo run -p c3-bench --bin chaos -- --drop 0.05 --poison 0.002
//! ```
//!
//! Exit status is nonzero on any invariant violation, so CI can run this
//! directly as a convergence gate.

use c3::system::{ClusterSpec, GlobalProtocol, SystemBuilder};
use c3::ResilienceConfig;
use c3_protocol::ops::{Addr, Reg, ThreadProgram};
use c3_protocol::states::ProtocolFamily;
use c3_sim::fabric::LinkId;
use c3_sim::fault::{FaultPlan, Flap, LinkFaults};
use c3_sim::kernel::RunOutcome;
use c3_sim::time::Delay;

const SHARED: Addr = Addr(5);
/// Second contended line on the other CXL device when two are present
/// (line-interleaved), doubling cross-cluster traffic.
const SHARED2: Addr = Addr(6);
const PRIVATE_BASE: u64 = 100;
const CORES_PER_CLUSTER: usize = 2;
const CLUSTERS: usize = 2;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seed N] [--iters N] [--threads N] [--drop P] [--dup P] [--delay P] \
         [--poison P]"
    );
    eprintln!("       with no rate flags, sweeps drop rates 0 / 1% / 2% / 5%");
    eprintln!("       plus one mixed dup+delay+poison round");
    std::process::exit(2);
}

/// One soak run; panics (→ nonzero exit) on any violated invariant.
/// Returns the summary line (printed by the caller in sweep order, so
/// parallel soaks keep deterministic output) and the rendered report for
/// the determinism check.
fn run_once(seed: u64, iters: u64, faults: LinkFaults, label: &str) -> (String, String) {
    let clusters = vec![
        ClusterSpec::new(ProtocolFamily::Mesi, CORES_PER_CLUSTER).with_l1(32, 4),
        ClusterSpec::new(ProtocolFamily::Moesi, CORES_PER_CLUSTER).with_l1(32, 4),
    ];
    // Each core hammers the shared line (atomicity oracle) and owns a
    // private line (data-integrity oracle).
    let mut programs = Vec::new();
    for c in 0..CLUSTERS as u64 {
        let mut cluster_programs = Vec::new();
        for k in 0..CORES_PER_CLUSTER as u64 {
            let me = Addr(PRIVATE_BASE + c * 10 + k);
            let mut p = ThreadProgram::new();
            for _ in 0..iters {
                p = p
                    .rmw(SHARED, 1, Reg(0))
                    .rmw(SHARED2, 1, Reg(2))
                    .rmw(me, 1, Reg(1));
            }
            cluster_programs.push(p);
        }
        programs.push(cluster_programs);
    }

    let (mut sim, handles) = SystemBuilder::new(clusters, GlobalProtocol::Cxl)
        .cxl_cache(64, 4)
        .seed(seed)
        // Timeout comfortably above the fault-free round trip so retries
        // fire only for genuinely lost messages; generous retry budget so
        // abandonment stays rare at <= 5% loss.
        .resilience(ResilienceConfig::new(3_000, 10))
        .build_with_seq_cores(programs);

    let links: Vec<LinkId> = handles.cxl_links.clone().map(LinkId).collect();
    assert!(!links.is_empty(), "no CXL links to perturb");
    sim.fabric_mut()
        .set_fault_plan(FaultPlan::new(seed).with_links(links, faults));
    sim.set_event_limit(100_000_000);

    let outcome = sim.run();
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "{label}: did not converge; pending: {:?}\n{}",
        sim.pending_components(),
        sim.post_mortem(outcome)
    );
    let leaked = sim.post_mortem(outcome).txns;
    assert!(
        leaked.is_empty(),
        "{label}: {} in-flight transaction(s) leaked past completion",
        leaked.len()
    );

    let report = sim.report();
    // Value oracle: poison-marked lines are by definition junk, every
    // other line must be exact.
    let poisoned = handles.poisoned_addrs(&sim);
    let mut checked = 0;
    let mut skipped = 0;
    let mut check = |addr: Addr, want: u64| {
        if poisoned.contains(&addr) {
            skipped += 1;
            return;
        }
        let got = handles.coherent_value(&sim, addr);
        if got != want {
            let mut keys = String::new();
            for (k, v) in report.iter() {
                if v != 0.0
                    && (k.starts_with("fault.")
                        || k.contains("retr")
                        || k.contains("abandon")
                        || k.contains("dup")
                        || k.contains("stale")
                        || k.contains("forced")
                        || k.contains("poison"))
                {
                    keys.push_str(&format!("  {k}={v}\n"));
                }
            }
            panic!("{label}: wrong value at {addr:?}: got {got}, want {want}\n{keys}");
        }
        checked += 1;
    };
    let total = (CLUSTERS * CORES_PER_CLUSTER) as u64 * iters;
    check(SHARED, total);
    check(SHARED2, total);
    for c in 0..CLUSTERS as u64 {
        for k in 0..CORES_PER_CLUSTER as u64 {
            check(Addr(PRIVATE_BASE + c * 10 + k), iters);
        }
    }

    let injected = report.get("fault.injected").unwrap_or(0.0);
    let mut resil = 0.0;
    for key in ["retries", "abandoned", "dup_suppressed"] {
        resil += report
            .iter()
            .filter(|(k, _)| k.ends_with(&format!(".{key}")))
            .map(|(_, v)| v)
            .sum::<f64>();
    }
    let summary = format!(
        "{label}: Completed at {} after {} events; {injected} fault(s) injected, \
         {resil} recovery action(s), {checked} line(s) exact, {skipped} poisoned line(s) excluded",
        sim.now(),
        sim.events_processed()
    );

    let mut rendered = String::new();
    for (k, v) in report.iter() {
        rendered.push_str(&format!("{k}={v}\n"));
    }
    (summary, rendered)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut iters = 60u64;
    let mut threads = c3_bench::runner::default_threads();
    let mut explicit: Option<LinkFaults> = None;
    let mut it = args.iter();
    fn num<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>) -> T {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = num(&mut it),
            "--iters" => iters = num(&mut it),
            "--threads" => threads = num(&mut it),
            "--drop" => explicit.get_or_insert_with(LinkFaults::default).drop_p = num(&mut it),
            "--dup" => explicit.get_or_insert_with(LinkFaults::default).dup_p = num(&mut it),
            "--delay" => {
                let f = explicit.get_or_insert_with(LinkFaults::default);
                f.delay_p = num(&mut it);
                f.delay = Delay::from_ns(200);
            }
            "--poison" => explicit.get_or_insert_with(LinkFaults::default).poison_p = num(&mut it),
            "-h" | "--help" => usage(),
            _ => usage(),
        }
    }

    let sweeps: Vec<(String, LinkFaults)> = if let Some(f) = explicit {
        vec![("explicit".to_string(), f)]
    } else {
        let mut v: Vec<(String, LinkFaults)> = [0.0, 0.01, 0.02, 0.05]
            .iter()
            .map(|&p| (format!("drop={:.0}%", p * 100.0), LinkFaults::drops(p)))
            .collect();
        v.push((
            "mixed dup=5% delay=5% poison=1%".to_string(),
            LinkFaults {
                dup_p: 0.05,
                delay_p: 0.05,
                delay: Delay::from_ns(200),
                poison_p: 0.01,
                ..LinkFaults::default()
            },
        ));
        v.push((
            "flap 5us up / 500ns down".to_string(),
            LinkFaults {
                flap: Some(Flap {
                    up: Delay::from_ns(5_000),
                    down: Delay::from_ns(500),
                    phase: Delay::ZERO,
                }),
                ..LinkFaults::default()
            },
        ));
        v
    };

    // Sweep points are independent seeded runs; soak them in parallel on
    // the shared runner and print summaries in sweep order afterwards.
    let summaries = c3_bench::runner::run_indexed(threads, &sweeps, |_, (label, faults)| {
        let (summary, a) = run_once(seed, iters, *faults, label);
        let (_, b) = run_once(seed, iters, *faults, label);
        assert_eq!(a, b, "{label}: same seed produced different reports");
        summary
    });
    for s in &summaries {
        println!("{s}");
    }
    println!("chaos: all {} sweep point(s) converged", sweeps.len());
}
