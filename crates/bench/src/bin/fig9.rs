//! Figure 9: heterogeneous MCM performance.
//!
//! Two scenarios — homogeneous CC protocols (MESI-CXL-MESI) and
//! heterogeneous (MESI-CXL-MOESI) — each under three MCM assignments:
//! all-Arm (weak), all-TSO, and mixed Arm/TSO. Normalized to all-Arm.
//!
//! Paper result: all-TSO degrades 22–39 % (22–43 % in the heterogeneous
//! scenario); the mixed assignment only 2.6–12.7 % (2.2–14.4 %) — C³
//! bridges heterogeneous MCMs without dragging the weak cluster down to
//! TSO speed.
//!
//! The workload × MCM grid of each scenario runs in parallel on the
//! shared runner; the tables are identical for any thread count.
//!
//! Usage: `cargo run --release -p c3-bench --bin fig9 [-- --ops N]
//! [--workloads a,b,c] [--threads N]`

use c3::system::GlobalProtocol;
use c3_bench::runner::{self, Experiment};
use c3_bench::{geomean, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::{Suite, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut ops = 1200usize;
    let mut filter: Option<Vec<String>> = None;
    let mut threads = runner::default_threads();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                ops = args[i + 1].parse().expect("ops");
                i += 2;
            }
            "--workloads" => {
                filter = Some(args[i + 1].split(',').map(|s| s.to_string()).collect());
                i += 2;
            }
            "--threads" => {
                threads = args[i + 1].parse().expect("threads");
                i += 2;
            }
            other => panic!("unknown arg {other}"),
        }
    }
    let specs: Vec<WorkloadSpec> = WorkloadSpec::all()
        .into_iter()
        .filter(|spec| {
            filter
                .as_ref()
                .map(|f| f.iter().any(|n| n == spec.name))
                .unwrap_or(true)
        })
        .collect();
    let mcm_combos = [
        (Mcm::Weak, Mcm::Weak),
        (Mcm::Tso, Mcm::Tso),
        (Mcm::Weak, Mcm::Tso),
    ];

    for (scenario, protos) in [
        (
            "MESI-CXL-MESI",
            (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        ),
        (
            "MESI-CXL-MOESI",
            (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
        ),
    ] {
        // The grid is specs × mcm_combos, in row-major order, so
        // results[3*w + k] is workload w under MCM combo k.
        let mut grid = Vec::new();
        for spec in &specs {
            for mcms in mcm_combos {
                let mut cfg = RunConfig::scaled(protos, GlobalProtocol::Cxl, mcms);
                cfg.ops_per_core = ops;
                grid.push(Experiment::new(*spec, cfg).tagged(format!(
                    "{}/{}/{:?}-{:?}",
                    spec.name,
                    cfg.label(),
                    mcms.0,
                    mcms.1
                )));
            }
        }
        let results = runner::run_grid(threads, &grid);

        println!("=== scenario {scenario} ===");
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>12}",
            "workload", "Arm-Arm", "TSO-TSO", "Arm-TSO", "Arm@mixed"
        );
        let mut suite_norm: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; 3];
        for (w, spec) in specs.iter().enumerate() {
            let cell = |k: usize| {
                results[3 * w + k]
                    .expect_completed(&grid[3 * w + k].tag)
                    .clone()
            };
            let times: Vec<f64> = (0..3).map(|k| cell(k).exec_ns as f64).collect();
            // cluster 0 is the weak one in the mixed (Weak, Tso) assignment
            let mixed_weak_cluster = cell(2).cluster_ns[0] as f64;
            let base = times[0];
            println!(
                "{:<18} {:>10.3} {:>10.3} {:>10.3} {:>12.3}",
                spec.name,
                1.0,
                times[1] / base,
                times[2] / base,
                mixed_weak_cluster / base,
            );
            let si = match spec.suite {
                Suite::Splash4 => 0,
                Suite::Parsec => 1,
                Suite::Phoenix => 2,
                Suite::Oltp => unreachable!("fig9 runs the 33 paper workloads"),
            };
            for k in 0..3 {
                suite_norm[si][k].push(times[k] / base);
            }
        }
        println!("\nPer-suite geomean (normalized to Arm-Arm):");
        for (si, name) in ["splash4", "parsec", "phoenix"].iter().enumerate() {
            if suite_norm[si][0].is_empty() {
                continue;
            }
            println!(
                "{:<18} {:>10.3} {:>10.3} {:>10.3}",
                name,
                geomean(&suite_norm[si][0]),
                geomean(&suite_norm[si][1]),
                geomean(&suite_norm[si][2])
            );
        }
        let all_tso: Vec<f64> = suite_norm.iter().flat_map(|s| s[1].clone()).collect();
        let mixed: Vec<f64> = suite_norm.iter().flat_map(|s| s[2].clone()).collect();
        if !all_tso.is_empty() {
            println!(
                "\nTSO-TSO : avg {:+.1}%   (paper: 22-39% / 22-43% slower)",
                (geomean(&all_tso) - 1.0) * 100.0
            );
            println!(
                "Arm-TSO : avg {:+.1}%   (paper: 2.6-12.7% / 2.2-14.4% slower)",
                (geomean(&mixed) - 1.0) * 100.0
            );
            println!(
                "(The Arm@mixed column is the weak cluster's own completion time in the\n\
                 mixed assignment, normalized to all-Arm — the paper's claim that C3\n\
                 does not hinder the weaker memory model.)"
            );
        }
        println!();
    }
}
