//! `metrics` — run one named workload with sampled telemetry enabled,
//! write the timeseries (CSV by default, JSON with `--json`), and print
//! a windowed summary plus peak-window bottleneck attribution.
//!
//! ```text
//! cargo run -p c3-bench --bin metrics -- vips
//! cargo run -p c3-bench --bin metrics -- histogram --interval-ns 50 --out /tmp/h.csv --full
//! cargo run -p c3-bench --bin metrics -- vips --trace /tmp/vips.json
//! ```
//!
//! The timeseries covers per-link backlog/throughput, L1 MSHR occupancy,
//! bridge in-flight transactions, directory/DCOH occupancy and retry
//! counters, per-component event attribution and per-vnet message counts
//! — all sampled on simulated-time boundaries, so same-seed runs emit
//! byte-identical files. `--trace` additionally writes a Perfetto trace
//! with the sampled series appended as counter tracks.

use c3::system::GlobalProtocol;
use c3_bench::{build_sim, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_sim::kernel::RunOutcome;
use c3_sim::metrics::MetricsHub;
use c3_workloads::WorkloadSpec;

fn usage() -> ! {
    eprintln!(
        "usage: metrics <workload> [--interval-ns N] [--out FILE] [--json] [--quick|--full]\n\
         \x20                 [--baseline] [--trace FILE] [--max-windows N]"
    );
    eprintln!(
        "       --interval-ns N   sample interval in simulated ns (default: 25 quick, 100 full)"
    );
    eprintln!("       --out FILE        timeseries path (default: metrics-<workload>.csv/.json)");
    eprintln!("       --json            write the JSON export (with per-window hot addresses)");
    eprintln!("       --quick           quick configuration (the default; kept for CI clarity)");
    eprintln!("       --full            paper-scale run instead of the quick configuration");
    eprintln!("       --baseline        hierarchical MESI global instead of CXL");
    eprintln!("       --trace FILE      also write a Perfetto trace with counter tracks");
    eprintln!("       --max-windows N   decimation cap on stored windows (default: 4096)");
    eprintln!("workloads:");
    let mut names: Vec<&str> = WorkloadSpec::all().iter().map(|w| w.name).collect();
    names.sort_unstable();
    names.dedup();
    eprintln!("  {}", names.join(" "));
    std::process::exit(2);
}

/// Columns of interest, resolved once from the registered metric names.
struct Columns {
    /// `(column, component name)` for each `comp.<name>.events` series.
    comp_events: Vec<(usize, String)>,
    /// `(column, link id)` for each `link.<i>.backlog_ns` series.
    link_backlog: Vec<(usize, u32)>,
}

fn resolve_columns(hub: &MetricsHub) -> Columns {
    let mut comp_events = Vec::new();
    let mut link_backlog = Vec::new();
    for (m, name) in hub.metric_names().iter().enumerate() {
        if let Some(comp) = name
            .strip_prefix("comp.")
            .and_then(|r| r.strip_suffix(".events"))
        {
            comp_events.push((m, comp.to_string()));
        } else if let Some(idx) = name
            .strip_prefix("link.")
            .and_then(|r| r.strip_suffix(".backlog_ns"))
            .and_then(|i| i.parse().ok())
        {
            link_backlog.push((m, idx));
        }
    }
    Columns {
        comp_events,
        link_backlog,
    }
}

/// Human name for a link: `src->dst` via the first route carrying it.
fn link_label(
    id: u32,
    ends: &[Option<(
        c3_sim::component::ComponentId,
        c3_sim::component::ComponentId,
    )>],
    names: &[String],
) -> String {
    match ends.get(id as usize).copied().flatten() {
        Some((s, d)) => format!(
            "{}->{}",
            names.get(s.index()).map(String::as_str).unwrap_or("?"),
            names.get(d.index()).map(String::as_str).unwrap_or("?")
        ),
        None => format!("link.{id}"),
    }
}

/// `(index into the resolved column list, value)` of a window's winner.
type Best = Option<(usize, f64)>;

/// Per-window attribution: total events, the busiest component and its
/// share, and the most-backlogged link.
fn attribute(hub: &MetricsHub, cols: &Columns, w: usize) -> (f64, Best, Best) {
    let mut total = 0.0;
    let mut best_comp: Best = None;
    for (i, &(m, _)) in cols.comp_events.iter().enumerate() {
        let d = hub.delta(w, m);
        total += d;
        if best_comp.map(|(_, b)| d > b).unwrap_or(d > 0.0) {
            best_comp = Some((i, d));
        }
    }
    let mut best_link: Best = None;
    for (i, &(m, _)) in cols.link_backlog.iter().enumerate() {
        let v = hub.value(w, m);
        if best_link.map(|(_, b)| v > b).unwrap_or(v > 0.0) {
            best_link = Some((i, v));
        }
    }
    (total, best_comp, best_link)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = None;
    let mut out_path = None;
    let mut interval_ns = None;
    let mut json = false;
    let mut full = false;
    let mut baseline = false;
    let mut trace_path = None;
    let mut max_windows = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--interval-ns" => {
                interval_ns = Some(
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--max-windows" => {
                max_windows = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace" => trace_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--json" => json = true,
            "--quick" => full = false,
            "--full" => full = true,
            "--baseline" => baseline = true,
            "-h" | "--help" => usage(),
            name if workload.is_none() => workload = Some(name.to_string()),
            _ => usage(),
        }
    }
    let Some(name) = workload else { usage() };
    let Some(spec) = WorkloadSpec::by_name(&name) else {
        eprintln!("unknown workload: {name}");
        usage();
    };

    let global = if baseline {
        GlobalProtocol::Hierarchical(ProtocolFamily::Mesi)
    } else {
        GlobalProtocol::Cxl
    };
    let mut cfg = RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        global,
        (Mcm::Weak, Mcm::Weak),
    );
    if !full {
        cfg = cfg.quick();
    }
    cfg = cfg.metrics_ns(interval_ns.unwrap_or(if full { 100 } else { 25 }));

    let (mut sim, _handles) = build_sim(&spec, &cfg);
    if let Some(cap) = max_windows {
        sim.metrics_mut().set_max_windows(cap);
    }
    if trace_path.is_some() {
        sim.set_tracing(1_000_000);
    }
    let outcome = sim.run();
    // One tail sample so the series always covers the final state (the
    // boundary sampler only fires when a later event crosses a boundary).
    sim.sample_metrics_now();

    // Write the timeseries before anything else — a truncated run is
    // exactly when the occupancy history is most valuable.
    let path =
        out_path.unwrap_or_else(|| format!("metrics-{name}.{}", if json { "json" } else { "csv" }));
    let body = if json {
        sim.metrics().to_json()
    } else {
        sim.metrics().to_csv()
    };
    std::fs::write(&path, body).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    if let Some(tp) = &trace_path {
        std::fs::write(tp, sim.trace_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {tp}: {e}");
            std::process::exit(1);
        });
    }

    if matches!(
        outcome,
        RunOutcome::Deadlock | RunOutcome::EventLimit | RunOutcome::TimeLimit
    ) {
        eprintln!("{}", sim.post_mortem(outcome));
        eprintln!("partial timeseries written to {path}");
        std::process::exit(1);
    }

    let hub = sim.metrics();
    let windows = hub.windows();
    println!(
        "{name} [{}]: {:?} at {} after {} events",
        cfg.label(),
        outcome,
        sim.now(),
        sim.events_processed()
    );
    println!(
        "telemetry: {windows} window(s) x {} series, interval {} ns ({} decimation(s)) -> {path}",
        hub.metric_names().len(),
        hub.interval().as_ns(),
        hub.decimations()
    );
    if windows == 0 {
        eprintln!("no samples taken: run shorter than one sample interval");
        std::process::exit(1);
    }

    let cols = resolve_columns(hub);
    let names = sim.component_names();
    let ends = sim.fabric().link_route_endpoints();

    // Windowed summary: up to 16 evenly spaced windows.
    println!(
        "\n{:>7} {:>12} {:>9}  {:<28} {:<26} hottest addr",
        "window", "t_ns", "events", "busiest component", "max-backlog link"
    );
    let step = windows.div_ceil(16);
    let shown: Vec<usize> = (0..windows).step_by(step.max(1)).collect();
    for &w in &shown {
        let (total, comp, link) = attribute(hub, &cols, w);
        let comp_s = match comp {
            Some((i, d)) if total > 0.0 => {
                format!("{} ({:.0}%)", cols.comp_events[i].1, 100.0 * d / total)
            }
            _ => "-".into(),
        };
        let link_s = match link {
            Some((i, v)) => format!(
                "{} {:.0} ns",
                link_label(cols.link_backlog[i].1, &ends, &names),
                v
            ),
            None => "-".into(),
        };
        let addr_s = match hub.top_addrs(w).first() {
            Some(&(a, c)) => format!("{a:#x} ({c})"),
            None => "-".into(),
        };
        println!(
            "{:>7} {:>12} {:>9.0}  {:<28} {:<26} {}",
            w,
            hub.window_time(w).as_ns(),
            total,
            comp_s,
            link_s,
            addr_s
        );
    }

    // Peak-window attribution: the window with the most delivered events.
    let peak = (0..windows)
        .max_by(|&a, &b| {
            let ta = attribute(hub, &cols, a).0;
            let tb = attribute(hub, &cols, b).0;
            ta.partial_cmp(&tb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a)) // earliest such window wins deterministically
        })
        .expect("windows > 0");
    let (total, comp, link) = attribute(hub, &cols, peak);
    let mut parts = Vec::new();
    if let Some((i, d)) = comp {
        if total > 0.0 {
            parts.push(format!(
                "{:.0}% of events in {} ({:.0}/{:.0})",
                100.0 * d / total,
                cols.comp_events[i].1,
                d,
                total
            ));
        }
    }
    if let Some((i, v)) = link {
        parts.push(format!(
            "link {} backlog {:.0} ns",
            link_label(cols.link_backlog[i].1, &ends, &names),
            v
        ));
    }
    if let Some(&(a, c)) = hub.top_addrs(peak).first() {
        parts.push(format!("hottest addr {a:#x} ({c} msgs)"));
    }
    println!(
        "\npeak window {peak} [t={} ns]: {}",
        hub.window_time(peak).as_ns(),
        if parts.is_empty() {
            "idle".to_string()
        } else {
            parts.join("; ")
        }
    );
}
