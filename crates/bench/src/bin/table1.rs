//! Table I: the CXL.mem coherence messages and their MESI equivalents.
//!
//! Usage: `cargo run -p c3-bench --bin table1`

use c3_protocol::msg::{direction, mesi_equivalent, CxlOpcode};

fn main() {
    println!("Table I: CXL.mem coherence messages and MESI equivalents");
    println!(
        "{:<12} {:<5} {:<10} Description",
        "Message", "Dir.", "MESI Eq."
    );
    let rows = [
        (
            CxlOpcode::MemRdA,
            "MemRd, A",
            "Read memory and acquire excl. ownership",
        ),
        (
            CxlOpcode::MemRdS,
            "MemRd, S",
            "Read memory and acquire sharable copy",
        ),
        (
            CxlOpcode::MemWrI,
            "MemWr, I",
            "Writeback, do not keep cachable copy",
        ),
        (
            CxlOpcode::MemWrS,
            "MemWr, S",
            "Writeback, retain current copy and state",
        ),
        (
            CxlOpcode::BiSnpData,
            "BISnpData",
            "Device request sharable copy from host",
        ),
        (
            CxlOpcode::BiSnpInv,
            "BISnpInv",
            "Device request exclusive cachable copy",
        ),
    ];
    for (op, name, desc) in rows {
        println!(
            "{:<12} {:<5} {:<10} {desc}",
            name,
            direction(op),
            mesi_equivalent(op)
        );
    }
}
