//! `trace` — run one named workload with transaction tracing enabled,
//! write a Perfetto-loadable Chrome trace JSON, and print the latency
//! histogram summary.
//!
//! ```text
//! cargo run -p c3-bench --bin trace -- vips
//! cargo run -p c3-bench --bin trace -- histogram --out /tmp/hist.json --cap 500000 --full
//! ```
//!
//! Load the emitted JSON at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): one track per component, `bridge` spans showing
//! Rule-II nesting (snoop ⊃ writeback, evict ⊃ writeback), `l1` spans for
//! MSHR lifetimes, instant markers for message deliveries.
//!
//! If the run deadlocks or hits the event limit, the post-mortem dump
//! (every in-flight transaction, the oldest blocked one, and its wait
//! chain) is printed instead of a trace summary.

use c3::system::GlobalProtocol;
use c3_bench::{build_sim, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_sim::kernel::RunOutcome;
use c3_workloads::WorkloadSpec;

fn usage() -> ! {
    eprintln!(
        "usage: trace <workload> [--out FILE] [--cap N] [--events N] [--full] [--text] [--baseline]"
    );
    eprintln!("       --out FILE   trace JSON path (default: trace-<workload>.json)");
    eprintln!("       --cap N      ring-buffer capacity in events (default: 1000000)");
    eprintln!("       --events N   cut the run off after N events (forces a post-mortem)");
    eprintln!("       --full       paper-scale run instead of the quick configuration");
    eprintln!("       --text       also print the compact text dump to stdout");
    eprintln!("       --baseline   hierarchical MESI global instead of CXL");
    eprintln!("workloads:");
    let mut names: Vec<&str> = WorkloadSpec::all().iter().map(|w| w.name).collect();
    names.sort_unstable();
    names.dedup();
    eprintln!("  {}", names.join(" "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = None;
    let mut out_path = None;
    let mut cap = 1_000_000usize;
    let mut events = None;
    let mut full = false;
    let mut text = false;
    let mut baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--cap" => {
                cap = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--events" => {
                events = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--full" => full = true,
            "--text" => text = true,
            "--baseline" => baseline = true,
            "-h" | "--help" => usage(),
            name if workload.is_none() => workload = Some(name.to_string()),
            _ => usage(),
        }
    }
    let Some(name) = workload else { usage() };
    let Some(spec) = WorkloadSpec::by_name(&name) else {
        eprintln!("unknown workload: {name}");
        usage();
    };

    let global = if baseline {
        GlobalProtocol::Hierarchical(ProtocolFamily::Mesi)
    } else {
        GlobalProtocol::Cxl
    };
    let mut cfg = RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        global,
        (Mcm::Weak, Mcm::Weak),
    );
    if !full {
        cfg = cfg.quick();
    }

    let (mut sim, _handles) = build_sim(&spec, &cfg);
    sim.set_tracing(cap);
    if let Some(n) = events {
        sim.set_event_limit(n);
    }
    let outcome = sim.run();

    // Write the trace before anything else: a truncated run is exactly
    // when the trace is most valuable (it shows what led up to the stall),
    // so the file must land on disk even when we exit nonzero below.
    let path = out_path.unwrap_or_else(|| format!("trace-{name}.json"));
    std::fs::write(&path, sim.trace_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    if text {
        print!("{}", sim.trace_text());
    }

    if matches!(
        outcome,
        RunOutcome::Deadlock | RunOutcome::EventLimit | RunOutcome::TimeLimit
    ) {
        eprintln!("{}", sim.post_mortem(outcome));
        eprintln!("partial trace written to {path}");
        std::process::exit(1);
    }

    let tracer = sim.tracer();
    println!(
        "{name} [{}]: {:?} at {} after {} events",
        cfg.label(),
        outcome,
        sim.now(),
        sim.events_processed()
    );
    println!(
        "trace: {} buffered event(s), {} dropped (ring cap {cap}) -> {path}",
        tracer.len(),
        tracer.dropped()
    );
    println!("open in https://ui.perfetto.dev or chrome://tracing");

    // Latency-histogram summary: every `*.lat.*` key the run produced.
    let report = sim.report();
    let mut classes: Vec<&str> = report
        .iter()
        .filter_map(|(k, _)| k.strip_suffix(".lat.count"))
        .collect();
    classes.sort_unstable();
    if classes.is_empty() {
        println!("no latency histograms recorded");
        return;
    }
    println!(
        "\n{:<40} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "transaction class", "count", "p50_ns", "p95_ns", "p99_ns", "max_ns"
    );
    for c in classes {
        let g = |stat: &str| report.get(&format!("{c}.lat.{stat}")).unwrap_or(f64::NAN);
        println!(
            "{:<40} {:>10} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            c,
            g("count"),
            g("p50_ns"),
            g("p95_ns"),
            g("p99_ns"),
            g("max_ns")
        );
    }
}
