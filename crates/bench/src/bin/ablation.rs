//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Fabric reordering** — ordered vs unordered device→host channel:
//!    how often is the BIConflict handshake actually *needed*?
//! 2. **CXL-cache capacity** — inclusion pressure: smaller C³ caches force
//!    Fig.-7 eviction recalls.
//! 3. **DCOH blocking (convoy)** — stalled-request counts under rising
//!    hot-line contention, the root cause of §VI-C1's slowdowns.
//!
//! Usage: `cargo run --release -p c3-bench --bin ablation`

use c3::system::GlobalProtocol;
use c3_bench::{run_workload, RunConfig};
use c3_protocol::mcm::Mcm;
use c3_protocol::states::ProtocolFamily;
use c3_workloads::WorkloadSpec;

fn cxl_cfg() -> RunConfig {
    RunConfig::scaled(
        (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
        GlobalProtocol::Cxl,
        (Mcm::Weak, Mcm::Weak),
    )
}

fn main() {
    println!("== Ablation 1: S2M channel ordering (contention-boosted histogram) ==");
    // Crank the hot-line contention so request/snoop races are frequent.
    let mut spec = WorkloadSpec::by_name("histogram").expect("workload");
    spec.shared_fraction = 0.20;
    spec.hot_fraction = 0.8;
    spec.hot_lines = 4;
    for (label, ordered) in [("unordered (CXL)", false), ("ordered (ablated)", true)] {
        let mut conflicts = 0.0;
        let mut bisnp = 0.0;
        let mut exec = 0;
        for seed in 0..4 {
            let mut cfg = cxl_cfg();
            cfg.ordered_s2m = ordered;
            cfg.seed = 0xAB + seed;
            let r = run_workload(&spec, &cfg);
            conflicts += r.report.get("cxl.dcoh.conflicts").unwrap_or(0.0);
            bisnp += r.report.get("cxl.dcoh.bisnp_sent").unwrap_or(0.0);
            exec += r.exec_ns / 4;
        }
        println!(
            "  {label:<20} exec {exec:>8} ns   BIConflicts {conflicts:>5}   BISnp {bisnp:>6}   (4 seeds)"
        );
    }
    println!("  (conflict handshakes arise only from the unordered fabric — the paper's");
    println!("   motivation for CXL's explicit conflict resolution, Fig. 2)");

    println!("\n== Ablation 2: C3 CXL-cache capacity (workload: canneal) ==");
    let spec = WorkloadSpec::by_name("canneal").expect("workload");
    for (sets, ways) in [(2048usize, 8usize), (256, 4), (64, 4), (16, 4)] {
        let mut cfg = cxl_cfg();
        cfg.cxl_cache = (sets, ways);
        let r = run_workload(&spec, &cfg);
        let evictions: f64 = r
            .report
            .iter()
            .filter(|(k, _)| k.ends_with("bridge.evictions"))
            .map(|(_, v)| v)
            .sum();
        let recalls: f64 = r
            .report
            .iter()
            .filter(|(k, _)| k.ends_with("bridge.recalls"))
            .map(|(_, v)| v)
            .sum();
        println!(
            "  {:>5} lines: exec {:>8} ns   Fig.7 evictions {:>6}   recalls {:>5}",
            sets * ways,
            r.exec_ns,
            evictions,
            recalls
        );
    }
    println!("  (inclusion makes the CXL cache a hard capacity bound on host-cached lines)");

    println!("\n== Ablation 3: DCOH blocking convoy vs hot-line contention ==");
    // Sweep the fraction of accesses that hit contended lines: queued
    // (stalled) requests at the blocking DCOH grow superlinearly — the
    // convoy effect of §VI-C1.
    let base = WorkloadSpec::by_name("histogram").expect("workload");
    for shared in [0.0, 0.02, 0.08, 0.2, 0.4] {
        let mut spec = base;
        spec.shared_fraction = shared;
        spec.hot_fraction = 0.8;
        spec.hot_lines = 4;
        let r = run_workload(&spec, &cxl_cfg());
        println!(
            "  hot traffic {:>4.1}%: exec {:>8} ns   DCOH stalled {:>6}   BISnp {:>6}   conflicts {:>4}",
            shared * 80.0,
            r.exec_ns,
            r.report.get("cxl.dcoh.stalled_requests").unwrap_or(0.0),
            r.report.get("cxl.dcoh.bisnp_sent").unwrap_or(0.0),
            r.report.get("cxl.dcoh.conflicts").unwrap_or(0.0),
        );
    }
    println!("  (stalled requests queue behind blocked snoops — the convoy behind Fig. 10's worst cases)");
}
