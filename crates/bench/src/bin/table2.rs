//! Table II: the generated C³ translation table (host = MOESI by default,
//! matching the paper's fragment; pass a family name for others).
//!
//! Usage: `cargo run -p c3-bench --bin table2 [-- MESI|MESIF|MOESI|RCC]`

use c3::generator::bridge_fsm;
use c3_protocol::states::ProtocolFamily;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "MOESI".into());
    let family = match arg.to_uppercase().as_str() {
        "MESI" => ProtocolFamily::Mesi,
        "MESIF" => ProtocolFamily::Mesif,
        "MOESI" => ProtocolFamily::Moesi,
        "RCC" => ProtocolFamily::Rcc,
        other => panic!("unknown family {other}"),
    };
    let fsm = bridge_fsm(family);
    println!("{}", fsm.dump_table());
    println!(
        "{} consistent compound states, {} translation rows",
        fsm.states.len(),
        fsm.rows.len()
    );
}
