//! # c3-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VI).
//! Binaries: `table1`, `table2`, `table4`, `fig9`, `fig10`, `fig11`,
//! `verify`, `ablation`. Criterion benches run scaled-down versions.
//!
//! The scaled system: 4 cores per cluster (8 total — the paper uses 8–30,
//! calibrated per workload), small L1s matching the scaled footprints
//! (the paper likewise shrinks inputs and caches to match real-hardware
//! MPKI), identical topology/latency across protocol configurations so
//! that measured differences are attributable to the protocols alone.

#![warn(missing_docs)]

pub mod alloc;
pub mod runner;

use c3::system::{ClusterSpec, GlobalProtocol, SystemBuilder};
use c3_mcm::core_model::{CoreConfig, TimingCore};
use c3_protocol::mcm::Mcm;
use c3_protocol::msg::SysMsg;
use c3_protocol::states::ProtocolFamily;
use c3_sim::kernel::RunOutcome;
use c3_sim::stats::Report;
use c3_sim::time::Delay;
use c3_workloads::WorkloadSpec;

/// One experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Per-cluster host protocols.
    pub protocols: (ProtocolFamily, ProtocolFamily),
    /// Global protocol.
    pub global: GlobalProtocol,
    /// Per-cluster MCMs.
    pub mcms: (Mcm, Mcm),
    /// Cores per cluster.
    pub cores_per_cluster: usize,
    /// Memory operations per core.
    pub ops_per_core: usize,
    /// L1 geometry (sets, ways).
    pub l1: (usize, usize),
    /// Bridge CXL-cache geometry (sets, ways).
    pub cxl_cache: (usize, usize),
    /// RNG seed.
    pub seed: u64,
    /// Ablation: force an ordered device→host channel.
    pub ordered_s2m: bool,
    /// Cross-cluster CXL link latency (Table III default: 70 ns). The
    /// `sweep` binary varies this; everything else keeps the default.
    pub link_latency: Delay,
    /// Sampled-telemetry interval (simulated time); `None` (the default)
    /// disables telemetry, keeping runs byte-identical to pre-telemetry
    /// builds.
    pub metrics_interval: Option<Delay>,
    /// Number of clusters (default 2, the paper's Fig. 1 shape). Odd
    /// cluster indices take `protocols.1`/`mcms.1`, even ones
    /// `protocols.0`/`mcms.0`, so 2 reproduces the historical system
    /// exactly and larger counts scale the topology for PDES throughput
    /// studies.
    pub clusters: usize,
    /// Run the kernel as a conservative parallel PDES on this many
    /// worker threads ([`c3_sim::kernel::Simulator::run_sharded`]);
    /// `None` (the default) uses the sequential kernel. The
    /// `C3_SIM_SHARDS` environment variable provides a process-wide
    /// fallback when unset. Reports are byte-identical for any value.
    pub shards: Option<usize>,
    /// Opt in to coherence-state footprint observability (resident-line /
    /// resident-region gauges, peak-state-bytes report lines) on the L1s
    /// and the global directory. Off by default: the extra keys would
    /// shift the pinned report/metrics fingerprints of existing configs.
    pub state_metrics: bool,
}

impl RunConfig {
    /// Scaled defaults used by the figure harnesses.
    pub fn scaled(
        protocols: (ProtocolFamily, ProtocolFamily),
        global: GlobalProtocol,
        mcms: (Mcm, Mcm),
    ) -> Self {
        RunConfig {
            protocols,
            global,
            mcms,
            cores_per_cluster: 4,
            ops_per_core: 1500,
            l1: (128, 4),
            cxl_cache: (2048, 8),
            seed: 0xC3,
            ordered_s2m: false,
            link_latency: Delay::from_ns(70),
            metrics_interval: None,
            clusters: 2,
            shards: None,
            state_metrics: false,
        }
    }

    /// Shrink the run for quick tests / criterion benches.
    pub fn quick(mut self) -> Self {
        self.cores_per_cluster = 2;
        self.ops_per_core = 150;
        self
    }

    /// Override the cross-cluster link latency (sensitivity sweeps).
    pub fn link_ns(mut self, ns: u64) -> Self {
        self.link_latency = Delay::from_ns(ns);
        self
    }

    /// Enable sampled telemetry every `ns` of simulated time.
    pub fn metrics_ns(mut self, ns: u64) -> Self {
        self.metrics_interval = Some(Delay::from_ns(ns));
        self
    }

    /// Enable coherence-state footprint observability (see
    /// [`RunConfig::state_metrics`]).
    pub fn with_state_metrics(mut self) -> Self {
        self.state_metrics = true;
        self
    }

    /// Use `n` clusters (alternating the two configured protocols/MCMs).
    pub fn with_clusters(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one cluster");
        self.clusters = n;
        self
    }

    /// Execute on `n` PDES shard worker threads instead of the
    /// sequential kernel.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// The effective shard-thread count: the explicit [`RunConfig::shards`]
    /// setting, else the `C3_SIM_SHARDS` environment variable, else
    /// `None` (sequential kernel).
    pub fn effective_shards(&self) -> Option<usize> {
        self.shards.or_else(|| {
            std::env::var("C3_SIM_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
    }

    /// The paper's protocol-combination label (e.g. "MESI-CXL-MOESI").
    pub fn label(&self) -> String {
        let g = match self.global {
            GlobalProtocol::Cxl => "CXL".to_string(),
            GlobalProtocol::Hierarchical(f) => f.label().to_string(),
        };
        format!(
            "{}-{}-{}",
            self.protocols.0.label(),
            g,
            self.protocols.1.label()
        )
    }
}

/// Result of one workload run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Simulated execution time (ns) — the paper's metric (all threads).
    pub exec_ns: u64,
    /// Per-cluster completion times (ns) — used by Fig. 9 to show the
    /// weak cluster is not hindered by a TSO neighbour.
    pub cluster_ns: Vec<u64>,
    /// Full statistics report.
    pub report: Report,
}

/// Build the simulated system for one workload/configuration pair
/// without running it — used by the `trace` binary to enable tracing
/// before the first event, and by [`run_workload_with`].
///
/// The returned simulator has the standard 400 M event limit set.
pub fn build_sim(
    spec: &WorkloadSpec,
    cfg: &RunConfig,
) -> (c3_sim::kernel::Simulator<SysMsg>, c3::system::SystemHandles) {
    let nthreads = cfg.cores_per_cluster * cfg.clusters;
    let clusters: Vec<ClusterSpec> = (0..cfg.clusters)
        .map(|ci| {
            let proto = if ci % 2 == 0 {
                cfg.protocols.0
            } else {
                cfg.protocols.1
            };
            ClusterSpec::new(proto, cfg.cores_per_cluster).with_l1(cfg.l1.0, cfg.l1.1)
        })
        .collect();
    let builder = SystemBuilder::new(clusters, cfg.global)
        .cxl_cache(cfg.cxl_cache.0, cfg.cxl_cache.1)
        .seed(cfg.seed)
        .link_latency(cfg.link_latency)
        .ordered_s2m(cfg.ordered_s2m);
    let spec_copy = *spec;
    let mcms = cfg.mcms;
    let protocols = cfg.protocols;
    let ops = cfg.ops_per_core;
    let seed = cfg.seed;
    let cores_per_cluster = cfg.cores_per_cluster;
    let (mut sim, handles) = builder.build(move |ci, k, l1| {
        let thread = ci * cores_per_cluster + k;
        let mcm = if ci % 2 == 0 { mcms.0 } else { mcms.1 };
        let family = if ci % 2 == 0 {
            protocols.0
        } else {
            protocols.1
        };
        let program = spec_copy.generate(thread, nthreads, ops, seed);
        Box::new(TimingCore::new(
            format!("c{ci}.core{k}"),
            l1,
            CoreConfig::new(mcm, family),
            program,
            seed ^ (thread as u64) << 32,
        ))
    });
    sim.set_event_limit(400_000_000);
    if cfg.state_metrics {
        for &l1 in handles.l1s.iter().flatten() {
            if let Some(c) = sim.component_as_mut::<c3_memsys::L1Controller>(l1) {
                c.set_state_metrics(true);
            }
        }
        for &b in &handles.bridges {
            if let Some(c) = sim.component_as_mut::<c3::bridge::C3Bridge>(b) {
                c.set_state_metrics(true);
            }
        }
        // The global tier is either the CXL DCOH or the hierarchical MESI
        // directory depending on `cfg.global`; try both downcasts.
        for &d in &handles.global_dirs {
            if let Some(c) = sim.component_as_mut::<c3_cxl::CxlDirectory>(d) {
                c.set_state_metrics(true);
            }
            if let Some(c) = sim.component_as_mut::<c3_memsys::GlobalMesiDir>(d) {
                c.set_state_metrics(true);
            }
        }
    }
    if let Some(interval) = cfg.metrics_interval {
        sim.set_metrics(interval);
        sim.metrics_mut()
            .set_vnet_lanes(c3_protocol::msg::SYS_VNET_LANES.to_vec());
    }
    (sim, handles)
}

/// Run one workload under one configuration.
///
/// # Panics
///
/// Panics if the simulation deadlocks (a protocol bug).
pub fn run_workload(spec: &WorkloadSpec, cfg: &RunConfig) -> RunResult {
    run_workload_with(spec, cfg, |_, _| ()).0
}

/// Like [`run_workload`], additionally extracting data from the finished
/// simulation via `inspect` (e.g. the DCOH hot-spot profile).
///
/// # Panics
///
/// Panics if the simulation deadlocks (a protocol bug).
pub fn run_workload_with<T>(
    spec: &WorkloadSpec,
    cfg: &RunConfig,
    inspect: impl FnOnce(&c3_sim::kernel::Simulator<SysMsg>, &c3::system::SystemHandles) -> T,
) -> (RunResult, T) {
    let (mut sim, handles) = build_sim(spec, cfg);
    let outcome = match cfg.effective_shards() {
        Some(n) => sim.run_sharded(n),
        None => sim.run(),
    };
    if outcome != RunOutcome::Completed {
        eprintln!("{}", sim.post_mortem(outcome));
        for &b in &handles.bridges {
            if let Some(bridge) = sim.component_as::<c3::bridge::C3Bridge>(b) {
                eprintln!("{}", bridge.pending_summary());
            }
        }
        if let Some(d) = sim.component_as::<c3_cxl::CxlDirectory>(handles.global_dir) {
            eprintln!("{}", d.engine().pending_summary());
        }
        panic!(
            "{} deadlocked under {}: {:?}",
            spec.name,
            cfg.label(),
            sim.pending_components()
        );
    }
    let (exec_ns, cluster_ns) = exec_times(&sim, &handles);
    let extra = inspect(&sim, &handles);
    (
        RunResult {
            exec_ns,
            cluster_ns,
            report: sim.report(),
        },
        extra,
    )
}

/// Per-cluster and overall completion times (ns) of a finished run: the
/// max over each cluster's cores of `TimingCore::finished_at`, and the
/// max over clusters — the paper's execution-time metric.
pub fn exec_times(
    sim: &c3_sim::kernel::Simulator<SysMsg>,
    handles: &c3::system::SystemHandles,
) -> (u64, Vec<u64>) {
    let mut exec_ns = 0;
    let mut cluster_ns = Vec::new();
    for cluster in &handles.cores {
        let mut t_cluster = 0;
        for &c in cluster {
            let tc = sim.component_as::<TimingCore>(c).expect("timing core");
            t_cluster = t_cluster.max(tc.finished_at().map(|t| t.as_ns()).unwrap_or(0));
        }
        cluster_ns.push(t_cluster);
        exec_ns = exec_ns.max(t_cluster);
    }
    (exec_ns, cluster_ns)
}

/// Geometric mean (the paper's per-suite aggregation).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Miss-cycle totals per latency band and access kind (Fig. 11 rows) from
/// a run report, summed over all L1s.
pub fn miss_breakdown(report: &Report) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for kind in ["load", "store", "rmw"] {
        for band in ["low(<75ns)", "med(75-400ns)", "high(>400ns)"] {
            let mut total = 0.0;
            for (k, v) in report.iter() {
                if k.ends_with(&format!("{kind}.miss_ns.{band}")) {
                    total += v;
                }
            }
            rows.push((format!("{kind}.{band}"), total));
        }
    }
    rows
}

/// Convenience re-export of the simulated-message type for bin targets.
pub type SystemMsg = SysMsg;

/// The Table III defaults re-exported for documentation binaries.
pub fn table3_link_latency() -> Delay {
    Delay::from_ns(70)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(global: GlobalProtocol) -> RunConfig {
        RunConfig::scaled(
            (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
            global,
            (Mcm::Weak, Mcm::Weak),
        )
        .quick()
    }

    #[test]
    fn workload_runs_complete_on_both_globals() {
        let spec = WorkloadSpec::by_name("vips").unwrap();
        for global in [
            GlobalProtocol::Cxl,
            GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
        ] {
            let r = run_workload(&spec, &quick_cfg(global));
            assert!(r.exec_ns > 0);
            assert!(r.report.get("sim.events").unwrap() > 0.0);
        }
    }

    #[test]
    fn contended_workload_more_cxl_sensitive_than_streaming() {
        // The paper's Fig. 10 shape: contended workloads suffer more from
        // the CXL protocol than streaming ones, relative to the baseline.
        let ratio = |name: &str| {
            let spec = WorkloadSpec::by_name(name).unwrap();
            let mut cfg = quick_cfg(GlobalProtocol::Cxl);
            cfg.ops_per_core = 600;
            let cxl = run_workload(&spec, &cfg).exec_ns as f64;
            let mut cfg = quick_cfg(GlobalProtocol::Hierarchical(ProtocolFamily::Mesi));
            cfg.ops_per_core = 600;
            let base = run_workload(&spec, &cfg).exec_ns as f64;
            cxl / base
        };
        let hist = ratio("histogram");
        let vips = ratio("vips");
        assert!(
            hist > vips,
            "histogram ratio {hist:.3} <= vips ratio {vips:.3}"
        );
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn labels_match_paper_nomenclature() {
        let cfg = RunConfig::scaled(
            (ProtocolFamily::Mesi, ProtocolFamily::Moesi),
            GlobalProtocol::Cxl,
            (Mcm::Weak, Mcm::Weak),
        );
        assert_eq!(cfg.label(), "MESI-CXL-MOESI");
        let cfg = RunConfig::scaled(
            (ProtocolFamily::Mesi, ProtocolFamily::Mesi),
            GlobalProtocol::Hierarchical(ProtocolFamily::Mesi),
            (Mcm::Weak, Mcm::Weak),
        );
        assert_eq!(cfg.label(), "MESI-MESI-MESI");
    }
}
