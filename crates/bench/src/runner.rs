//! Parallel experiment runner.
//!
//! The paper's evaluation is a *grid* — workload × protocol combination ×
//! MCM assignment × link latency × seed — and every cell is an
//! independent, deterministic simulation. This module fans the cells of
//! such a grid across OS threads with a dependency-free
//! `std::thread::scope` worker pool and collects the results **keyed by
//! config index**, so the assembled output is byte-identical regardless
//! of worker count or completion order. Each job is classified by its
//! [`RunOutcome`] rather than panicking mid-pool, and the whole grid can
//! be exported as machine-readable JSON (per-cell wall-clock, simulated
//! time, event count, events/sec) for perf-trajectory tracking
//! (`BENCH_*.json`).
//!
//! Determinism under parallelism holds because a [`crate::build_sim`]
//! simulation is a closed system: its RNG streams derive only from
//! `RunConfig::seed`, and no state is shared between cells. Threads
//! change *when* a cell runs, never *what* it computes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use c3_sim::kernel::RunOutcome;
use c3_sim::stats::Report;
use c3_workloads::WorkloadSpec;

use crate::{build_sim, exec_times, RunConfig};

/// Worker-thread count: `C3_BENCH_THREADS` if set (≥ 1), otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("C3_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every job on a scoped worker pool of `threads` threads,
/// returning results in job order (index `i` of the output is `f(i,
/// &jobs[i])`), independent of scheduling. Jobs are pulled from a shared
/// atomic cursor, so long and short cells interleave without static
/// partitioning imbalance. A panicking job propagates after all workers
/// have drained.
pub fn run_indexed<T, R, F>(threads: usize, jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut panicked = None;
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break got;
                        }
                        got.push((i, f(i, &jobs[i])));
                    }
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok(got) => {
                    for (i, r) in got {
                        slots[i] = Some(r);
                    }
                }
                Err(p) => panicked = Some(p),
            }
        }
    });
    if let Some(p) = panicked {
        std::panic::resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every job index produced a result"))
        .collect()
}

/// One cell of an experiment grid: a workload under a configuration,
/// with a human-readable tag for tables and JSON.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Display tag (e.g. `"link70/MESI-CXL-MESI"`).
    pub tag: String,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// The system configuration.
    pub cfg: RunConfig,
}

impl Experiment {
    /// An experiment tagged with the config's protocol label.
    pub fn new(workload: WorkloadSpec, cfg: RunConfig) -> Self {
        Experiment {
            tag: format!("{}/{}", workload.name, cfg.label()),
            workload,
            cfg,
        }
    }

    /// Replace the display tag.
    pub fn tagged(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }
}

/// Everything measured from one grid cell.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Simulated execution time (ns) — the paper's metric.
    pub exec_ns: u64,
    /// Per-cluster completion times (ns).
    pub cluster_ns: Vec<u64>,
    /// Final simulated time (ns).
    pub sim_ns: u64,
    /// Events delivered by the kernel.
    pub events: u64,
    /// Wall-clock spent in the event loop (ms; varies run to run).
    pub wall_ms: f64,
    /// Kernel throughput (events / wall second; varies run to run).
    pub events_per_sec: f64,
    /// Full statistics report.
    pub report: Report,
    /// Post-mortem text when `outcome != Completed`.
    pub failure: Option<String>,
}

impl ExperimentResult {
    /// Assert the run completed, panicking with the post-mortem if not.
    pub fn expect_completed(&self, what: &str) -> &Self {
        if self.outcome != RunOutcome::Completed {
            panic!(
                "{what}: run ended {:?}\n{}",
                self.outcome,
                self.failure.as_deref().unwrap_or("")
            );
        }
        self
    }
}

/// Run one experiment cell, classifying the outcome instead of
/// panicking, so a deadlocked cell doesn't poison a whole grid.
pub fn run_experiment(exp: &Experiment) -> ExperimentResult {
    let (mut sim, handles) = build_sim(&exp.workload, &exp.cfg);
    let t0 = Instant::now();
    let outcome = match exp.cfg.effective_shards() {
        Some(n) => sim.run_sharded(n),
        None => sim.run(),
    };
    let wall = t0.elapsed();
    let failure = (outcome != RunOutcome::Completed).then(|| {
        format!(
            "{}\npending: {:?}",
            sim.post_mortem(outcome),
            sim.pending_components()
        )
    });
    let (exec_ns, cluster_ns) = exec_times(&sim, &handles);
    ExperimentResult {
        outcome,
        exec_ns,
        cluster_ns,
        sim_ns: sim.now().as_ns(),
        events: sim.events_processed(),
        wall_ms: wall.as_secs_f64() * 1_000.0,
        events_per_sec: sim.events_per_sec(),
        report: sim.report(),
        failure,
    }
}

/// Run a whole grid on `threads` workers; results are in grid order.
pub fn run_grid(threads: usize, grid: &[Experiment]) -> Vec<ExperimentResult> {
    run_indexed(threads, grid, |_, e| run_experiment(e))
}

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a grid and its results as a JSON document (`BENCH_*.json`
/// shape). With `timing` false, the wall-clock-derived fields
/// (`wall_ms`, `events_per_sec`) are omitted and the document is fully
/// deterministic for a seed — byte-identical for any worker count.
pub fn grid_json(grid: &[Experiment], results: &[ExperimentResult], timing: bool) -> String {
    assert_eq!(grid.len(), results.len(), "grid/result length mismatch");
    let mut out = String::from("{\n  \"experiments\": [\n");
    for (i, (e, r)) in grid.iter().zip(results).enumerate() {
        let cluster = r
            .cluster_ns
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "    {{\"tag\":\"{}\",\"workload\":\"{}\",\"config\":\"{}\",\"seed\":{},\
             \"link_ns\":{},\"ops_per_core\":{},\"outcome\":\"{:?}\",\"exec_ns\":{},\
             \"cluster_ns\":[{}],\"sim_ns\":{},\"events\":{}",
            json_escape(&e.tag),
            json_escape(e.workload.name),
            json_escape(&e.cfg.label()),
            e.cfg.seed,
            e.cfg.link_latency.as_ns(),
            e.cfg.ops_per_core,
            r.outcome,
            r.exec_ns,
            cluster,
            r.sim_ns,
            r.events,
        ));
        if timing {
            out.push_str(&format!(
                ",\"wall_ms\":{:.3},\"events_per_sec\":{:.0}",
                r.wall_ms, r.events_per_sec
            ));
        }
        out.push('}');
        if i + 1 < grid.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_job_order() {
        let jobs: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 5, 16] {
            let out = run_indexed(threads, &jobs, |i, &j| {
                assert_eq!(i as u64, j);
                j * j
            });
            assert_eq!(out, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_empty_grid() {
        let out: Vec<u64> = run_indexed(4, &[] as &[u64], |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_indexed_propagates_panics() {
        run_indexed(3, &[0u64, 1, 2, 3], |i, _| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }
}
